#include "inject/service.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <new>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "common/failpoint.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "common/serial.hh"
#include "inject/mask_gen.hh"
#include "storage/fault.hh"

namespace dfi::inject
{

namespace
{

bool
faultTypeFromName(const std::string &name, dfi::FaultType &out)
{
    for (const dfi::FaultType type :
         {dfi::FaultType::Transient, dfi::FaultType::Intermittent,
          dfi::FaultType::Permanent}) {
        if (faultTypeName(type) == name) {
            out = type;
            return true;
        }
    }
    return false;
}

bool
populationFromName(const std::string &name, Population &out)
{
    for (const Population population :
         {Population::SingleBit, Population::DoubleAdjacent,
          Population::DoubleRandom, Population::MultiStructure}) {
        if (populationName(population) == name) {
            out = population;
            return true;
        }
    }
    return false;
}

/** Typed member getters; false + error on a wrong JSON kind. */
bool
getUint(const json::Value &v, const std::string &key,
        std::uint64_t &out, std::string &error)
{
    if (v.kind() != json::Kind::Int || v.isNegative()) {
        error = "config." + key + ": expected an unsigned integer";
        return false;
    }
    out = v.asUint();
    return true;
}

bool
getNumber(const json::Value &v, const std::string &key, double &out,
          std::string &error)
{
    if (!v.isNumber()) {
        error = "config." + key + ": expected a number";
        return false;
    }
    out = v.asDouble();
    return true;
}

bool
getBool(const json::Value &v, const std::string &key, bool &out,
        std::string &error)
{
    if (v.kind() != json::Kind::Bool) {
        error = "config." + key + ": expected a boolean";
        return false;
    }
    out = v.asBool();
    return true;
}

bool
getString(const json::Value &v, const std::string &key,
          std::string &out, std::string &error)
{
    if (v.kind() != json::Kind::String) {
        error = "config." + key + ": expected a string";
        return false;
    }
    out = v.asString();
    return true;
}

/**
 * Decode one config member.  The key set mirrors the telemetry
 * config echo plus the execution knobs a remote client may set.
 */
bool
decodeConfigMember(const std::string &key, const json::Value &v,
                   CampaignConfig &cfg, std::string &error)
{
    std::uint64_t u = 0;
    std::string s;
    if (key == "component")
        return getString(v, key, cfg.component, error);
    if (key == "benchmark")
        return getString(v, key, cfg.benchmark, error);
    if (key == "scale") {
        if (!getUint(v, key, u, error))
            return false;
        cfg.scale = static_cast<std::uint32_t>(u);
        return true;
    }
    if (key == "core")
        return getString(v, key, cfg.coreName, error);
    if (key == "injections")
        return getUint(v, key, cfg.numInjections, error);
    if (key == "confidence")
        return getNumber(v, key, cfg.confidence, error);
    if (key == "margin")
        return getNumber(v, key, cfg.margin, error);
    if (key == "exhaustive")
        return getBool(v, key, cfg.exhaustive, error);
    if (key == "fault_type") {
        if (!getString(v, key, s, error))
            return false;
        if (!faultTypeFromName(s, cfg.faultType)) {
            error = "config.fault_type: unknown fault type '" + s +
                    "'";
            return false;
        }
        return true;
    }
    if (key == "population") {
        if (!getString(v, key, s, error))
            return false;
        if (!populationFromName(s, cfg.population)) {
            error = "config.population: unknown population '" + s +
                    "'";
            return false;
        }
        return true;
    }
    if (key == "intermittent_min")
        return getUint(v, key, cfg.intermittentMin, error);
    if (key == "intermittent_max")
        return getUint(v, key, cfg.intermittentMax, error);
    if (key == "cache_scale")
        return getNumber(v, key, cfg.cacheScale, error);
    if (key == "timeout_factor")
        return getNumber(v, key, cfg.timeoutFactor, error);
    if (key == "early_stop_invalid_entry")
        return getBool(v, key, cfg.earlyStopInvalidEntry, error);
    if (key == "early_stop_overwrite")
        return getBool(v, key, cfg.earlyStopOverwrite, error);
    if (key == "seed")
        return getUint(v, key, cfg.seed, error);
    if (key == "prune")
        return getBool(v, key, cfg.prune, error);
    if (key == "jobs") {
        if (!getUint(v, key, u, error))
            return false;
        cfg.jobs = static_cast<std::uint32_t>(u);
        return true;
    }
    if (key == "telemetry_timing")
        return getBool(v, key, cfg.telemetryTiming, error);
    if (key == "use_checkpoints")
        return getBool(v, key, cfg.useCheckpoints, error);
    if (key == "checkpoints") {
        if (!getUint(v, key, u, error))
            return false;
        cfg.checkpointCount = static_cast<std::uint32_t>(u);
        return true;
    }
    if (key == "checkpoint_budget_mb")
        return getUint(v, key, cfg.checkpointMemBudgetMB, error);
    error = "config." + key + ": unknown key";
    return false;
}

json::Value
encodeConfig(const CampaignConfig &cfg)
{
    json::Value obj = json::Value::object();
    obj.set("component", json::Value::string(cfg.component));
    obj.set("benchmark", json::Value::string(cfg.benchmark));
    obj.set("scale", json::Value::unsignedInt(cfg.scale));
    obj.set("core", json::Value::string(cfg.coreName));
    obj.set("injections",
            json::Value::unsignedInt(cfg.numInjections));
    obj.set("confidence", json::Value::number(cfg.confidence));
    obj.set("margin", json::Value::number(cfg.margin));
    obj.set("exhaustive", json::Value::boolean(cfg.exhaustive));
    obj.set("fault_type",
            json::Value::string(faultTypeName(cfg.faultType)));
    obj.set("population",
            json::Value::string(populationName(cfg.population)));
    obj.set("intermittent_min",
            json::Value::unsignedInt(cfg.intermittentMin));
    obj.set("intermittent_max",
            json::Value::unsignedInt(cfg.intermittentMax));
    obj.set("cache_scale", json::Value::number(cfg.cacheScale));
    obj.set("timeout_factor",
            json::Value::number(cfg.timeoutFactor));
    obj.set("early_stop_invalid_entry",
            json::Value::boolean(cfg.earlyStopInvalidEntry));
    obj.set("early_stop_overwrite",
            json::Value::boolean(cfg.earlyStopOverwrite));
    obj.set("seed", json::Value::unsignedInt(cfg.seed));
    obj.set("prune", json::Value::boolean(cfg.prune));
    obj.set("jobs", json::Value::unsignedInt(cfg.jobs));
    obj.set("telemetry_timing",
            json::Value::boolean(cfg.telemetryTiming));
    obj.set("use_checkpoints",
            json::Value::boolean(cfg.useCheckpoints));
    obj.set("checkpoints",
            json::Value::unsignedInt(cfg.checkpointCount));
    obj.set("checkpoint_budget_mb",
            json::Value::unsignedInt(cfg.checkpointMemBudgetMB));
    return obj;
}

json::Value
encodeCounts(const ClassCounts &counts)
{
    json::Value obj = json::Value::object();
    for (std::size_t c = 0; c < kNumOutcomeClasses; ++c) {
        const auto cls = static_cast<OutcomeClass>(c);
        obj.set(outcomeClassName(cls),
                json::Value::unsignedInt(counts.get(cls)));
    }
    return obj;
}

bool
decodeCounts(const json::Value &obj, ClassCounts &counts,
             std::string &error)
{
    for (const auto &[name, value] : obj.members()) {
        OutcomeClass cls = OutcomeClass::Masked;
        if (!outcomeClassFromName(name, cls)) {
            error = "counts: unknown class '" + name + "'";
            return false;
        }
        if (value.kind() != json::Kind::Int || value.isNegative()) {
            error = "counts." + name + ": expected an unsigned "
                    "integer";
            return false;
        }
        counts.counts[static_cast<std::size_t>(cls)] = value.asUint();
    }
    return true;
}

} // namespace

bool
decodeServiceRequest(const json::Value &line, ServiceRequest &out,
                     std::string &error)
{
    if (line.kind() != json::Kind::Object) {
        error = "request: expected a JSON object";
        return false;
    }
    const json::Value *kind = line.find("kind");
    if (kind == nullptr || kind->kind() != json::Kind::String ||
        kind->asString() != kServiceRequestKind) {
        error = "request: missing kind \"dfi-request\"";
        return false;
    }
    out = ServiceRequest{};
    for (const auto &[key, value] : line.members()) {
        if (key == "kind")
            continue;
        if (key == "op") {
            if (value.kind() != json::Kind::String) {
                error = "request.op: expected a string";
                return false;
            }
            out.op = value.asString();
            continue;
        }
        if (key == "client") {
            if (value.kind() != json::Kind::String) {
                error = "request.client: expected a string";
                return false;
            }
            out.client = value.asString();
            continue;
        }
        if (key == "config") {
            if (value.kind() != json::Kind::Object) {
                error = "request.config: expected an object";
                return false;
            }
            for (const auto &[ckey, cvalue] : value.members()) {
                if (!decodeConfigMember(ckey, cvalue, out.config,
                                        error))
                    return false;
            }
            continue;
        }
        error = "request." + key + ": unknown key";
        return false;
    }
    if (out.op != "campaign" && out.op != "ping" &&
        out.op != "stats" && out.op != "shutdown") {
        error = "request.op: unknown operation '" + out.op + "'";
        return false;
    }
    return true;
}

json::Value
encodeServiceRequest(const ServiceRequest &request)
{
    json::Value line = json::Value::object();
    line.set("kind", json::Value::string(kServiceRequestKind));
    line.set("op", json::Value::string(request.op));
    line.set("client", json::Value::string(request.client));
    if (request.op == "campaign")
        line.set("config", encodeConfig(request.config));
    return line;
}

json::Value
encodeServiceProgress(std::uint64_t done, std::uint64_t total)
{
    json::Value line = json::Value::object();
    line.set("kind", json::Value::string(kServiceProgressKind));
    line.set("done", json::Value::unsignedInt(done));
    line.set("total", json::Value::unsignedInt(total));
    return line;
}

json::Value
encodeServiceResponse(const ServiceResponse &response)
{
    json::Value line = json::Value::object();
    line.set("kind", json::Value::string(kServiceResponseKind));
    line.set("op", json::Value::string(response.op));
    line.set("ok", json::Value::boolean(response.ok));
    if (!response.ok) {
        line.set("error", json::Value::string(response.error));
        line.set("retryable",
                 json::Value::boolean(response.retryable));
        return line;
    }
    if (response.op == "campaign") {
        line.set("cache_key", json::Value::string(response.cacheKey));
        line.set("cache_hit", json::Value::boolean(response.cacheHit));
        line.set("cache_source",
                 json::Value::string(response.cacheSource));
        line.set("runs_total",
                 json::Value::unsignedInt(response.runsTotal));
        line.set("counts", encodeCounts(response.counts));
        line.set("vulnerability",
                 json::Value::number(response.vulnerability));
        line.set("runs_jsonl",
                 json::Value::string(response.telemetryRuns));
        line.set("summary_json",
                 json::Value::string(response.telemetrySummary));
    }
    if (!response.extra.isNull())
        line.set("data", response.extra);
    return line;
}

bool
decodeServiceResponse(const json::Value &line, ServiceResponse &out,
                      std::string &error)
{
    if (line.kind() != json::Kind::Object) {
        error = "response: expected a JSON object";
        return false;
    }
    const json::Value *kind = line.find("kind");
    if (kind == nullptr || kind->kind() != json::Kind::String ||
        kind->asString() != kServiceResponseKind) {
        error = "response: missing kind \"dfi-response\"";
        return false;
    }
    out = ServiceResponse{};
    const json::Value *ok = line.find("ok");
    if (ok == nullptr || ok->kind() != json::Kind::Bool) {
        error = "response.ok: expected a boolean";
        return false;
    }
    out.ok = ok->asBool();
    if (const json::Value *op = line.find("op");
        op != nullptr && op->kind() == json::Kind::String)
        out.op = op->asString();
    if (const json::Value *err = line.find("error");
        err != nullptr && err->kind() == json::Kind::String)
        out.error = err->asString();
    if (const json::Value *v = line.find("retryable");
        v != nullptr && v->kind() == json::Kind::Bool)
        out.retryable = v->asBool();
    if (const json::Value *v = line.find("cache_key");
        v != nullptr && v->kind() == json::Kind::String)
        out.cacheKey = v->asString();
    if (const json::Value *v = line.find("cache_hit");
        v != nullptr && v->kind() == json::Kind::Bool)
        out.cacheHit = v->asBool();
    if (const json::Value *v = line.find("cache_source");
        v != nullptr && v->kind() == json::Kind::String)
        out.cacheSource = v->asString();
    if (const json::Value *v = line.find("runs_total");
        v != nullptr && v->kind() == json::Kind::Int &&
        !v->isNegative())
        out.runsTotal = v->asUint();
    if (const json::Value *v = line.find("counts");
        v != nullptr && v->kind() == json::Kind::Object) {
        if (!decodeCounts(*v, out.counts, error))
            return false;
    }
    if (const json::Value *v = line.find("vulnerability");
        v != nullptr && v->isNumber())
        out.vulnerability = v->asDouble();
    if (const json::Value *v = line.find("runs_jsonl");
        v != nullptr && v->kind() == json::Kind::String)
        out.telemetryRuns = v->asString();
    if (const json::Value *v = line.find("summary_json");
        v != nullptr && v->kind() == json::Kind::String)
        out.telemetrySummary = v->asString();
    if (const json::Value *v = line.find("data"); v != nullptr)
        out.extra = *v;
    return true;
}

namespace
{

/** Version tags for the two disk-cache file formats. */
constexpr const char *kPrepCacheTag = "dfi-prep-cache-v1";
constexpr const char *kResponseCacheKind = "dfi-response-cache-v1";

/** True when the failpoint fires with an Error action. */
bool
chaosError(const char *site)
{
    return failpoint::check(site).kind ==
           failpoint::Action::Kind::Error;
}

/**
 * Save via a process-unique temp file + fsync + rename + parent
 * fsync, so neither a concurrent reader, a crash mid-write, nor a
 * power cut can ever publish a torn or empty file under `path`:
 * rename is only atomic against bytes that are already durable, and
 * the rename itself is only durable once the directory entry is.
 * (The digest framing remains the backstop — a torn file reads as a
 * cold miss — but it should never be the first line of defence.)
 *
 * Chaos seams: `cache.write`, `cache.fsync`, `cache.rename`.
 */
bool
writeFileAtomic(const std::string &path, const std::string &payload)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;
    const auto abandon = [&](bool close_fd) {
        if (close_fd)
            ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    };

    std::size_t off = 0;
    while (off < payload.size()) {
        if (chaosError("cache.write"))
            return abandon(true);
        const ssize_t n = ::write(fd, payload.data() + off,
                                  payload.size() - off);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return abandon(true);
        off += static_cast<std::size_t>(n);
    }
    if (chaosError("cache.fsync") || ::fsync(fd) != 0)
        return abandon(true);
    if (::close(fd) != 0)
        return abandon(false);
    if (chaosError("cache.rename") ||
        ::rename(tmp.c_str(), path.c_str()) != 0)
        return abandon(false);

    // Make the rename durable.  Failure here is not abandoned: the
    // new file is already correctly published to live readers, the
    // entry just might not survive a power cut.
    const std::size_t slash = path.rfind('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dirfd >= 0) {
        ::fsync(dirfd);
        ::close(dirfd);
    }
    return true;
}

enum class FileRead
{
    Ok,
    Miss,    //!< no such file
    IoError, //!< open or read failed for any other reason
};

/** Read a whole file (chaos seam: `cache.read`). */
FileRead
readFileBytes(const std::string &path, std::string &out)
{
    if (chaosError("cache.read"))
        return FileRead::IoError;
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return errno == ENOENT ? FileRead::Miss
                               : FileRead::IoError;
    out.clear();
    char buf[64 << 10];
    while (true) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0) {
            ::close(fd);
            return FileRead::IoError;
        }
        if (n == 0)
            break;
        out.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return FileRead::Ok;
}

} // namespace

CampaignService::CampaignService(Options options)
    : opts_(std::move(options))
{
    if (!opts_.cacheDir.empty()) {
        // Best-effort: an uncreatable directory just means every
        // disk lookup misses and every store fails quietly.
        std::error_code ec;
        std::filesystem::create_directories(opts_.cacheDir, ec);
    }
}

std::shared_ptr<const PreparedCampaign>
CampaignService::lockedLruFind(const std::string &key)
{
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
        if (it->key == key) {
            lru_.splice(lru_.begin(), lru_, it);
            return lru_.front().prep;
        }
    }
    return nullptr;
}

void
CampaignService::cacheInsert(
    const std::string &key,
    std::shared_ptr<const PreparedCampaign> prep)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const CacheEntry &entry : lru_) {
        if (entry.key == key)
            return; // racing request cached it first
    }
    CacheEntry entry;
    entry.key = key;
    entry.bytes = prep->approxBytes();
    entry.prep = std::move(prep);

    // An entry larger than the whole budget would evict everything
    // and still not fit; serve it uncached.
    if (entry.bytes > opts_.cacheBudgetBytes)
        return;
    cacheBytes_ += entry.bytes;
    lru_.push_front(std::move(entry));
    while (cacheBytes_ > opts_.cacheBudgetBytes && lru_.size() > 1) {
        cacheBytes_ -= lru_.back().bytes;
        lru_.pop_back();
        ++stats_.evictions;
    }
    stats_.entries = lru_.size();
    stats_.bytes = cacheBytes_;
}

void
CampaignService::publishFlight(
    const std::string &key, PrepFlight &flight,
    std::shared_ptr<const PreparedCampaign> prep,
    const std::string &error)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        flights_.erase(key);
    }
    {
        std::lock_guard<std::mutex> lock(flight.mu);
        flight.prep = std::move(prep);
        flight.error = error;
        flight.done = true;
    }
    flight.cv.notify_all();
}

std::string
CampaignService::responseKey(const std::string &cacheKey, bool prune)
{
    // cacheKey() deliberately ignores knobs that cannot change the
    // prepared artifacts; prune *does* change the response payload
    // (header stats, per-record prune_class), so the memo key folds
    // it back in.
    const std::string text = std::string("dfi-response-key-v1|") +
                             cacheKey +
                             (prune ? "|prune" : "|noprune");
    return hash::toHex(hash::fnv1a(text));
}

std::string
CampaignService::prepPath(const std::string &key) const
{
    return opts_.cacheDir + "/prep_" + key + ".bin";
}

std::string
CampaignService::responsePath(const std::string &key) const
{
    return opts_.cacheDir + "/resp_" + key + ".json";
}

std::shared_ptr<const PreparedCampaign>
CampaignService::loadPreparedFromDisk(const CampaignConfig &cfg,
                                      const std::string &key,
                                      bool &io_error) const
{
    io_error = false;
    std::string payload;
    const FileRead read = readFileBytes(prepPath(key), payload);
    if (read != FileRead::Ok) {
        io_error = read == FileRead::IoError;
        return nullptr;
    }
    if (payload.size() < sizeof(std::uint64_t))
        return nullptr;

    // The trailing digest frames the stream: a truncated or corrupt
    // spill file must read as a cold miss, never as wrong state.
    std::uint64_t digest = 0;
    std::memcpy(&digest,
                payload.data() + payload.size() - sizeof digest,
                sizeof digest);
    payload.resize(payload.size() - sizeof digest);
    if (hash::fnv1a(payload) != digest)
        return nullptr;

    serial::Reader reader(payload);
    std::string tag;
    std::string stored_key;
    serial::value(reader, tag);
    serial::value(reader, stored_key);
    if (!reader.ok() || tag != kPrepCacheTag || stored_key != key)
        return nullptr;
    std::string error;
    return loadPreparedCampaign(cfg, reader, error);
}

bool
CampaignService::storePreparedToDisk(
    const std::string &key, const PreparedCampaign &prep) const
{
    serial::Writer writer;
    std::string tag = kPrepCacheTag;
    serial::value(writer, tag);
    std::string stored_key = key;
    serial::value(writer, stored_key);
    savePreparedCampaign(prep, writer);
    // A failed save (serial.write) must never persist: the digest
    // would frame the truncated bytes as a valid archive.
    if (!writer.ok())
        return false;
    std::string payload = writer.buffer();
    const std::uint64_t digest = hash::fnv1a(payload);
    payload.append(reinterpret_cast<const char *>(&digest),
                   sizeof digest);
    return writeFileAtomic(prepPath(key), payload);
}

CampaignService::DiskRead
CampaignService::loadResponseFromDisk(const std::string &key,
                                      bool prune,
                                      ServiceResponse &out) const
{
    std::string text;
    const FileRead read =
        readFileBytes(responsePath(responseKey(key, prune)), text);
    if (read != FileRead::Ok)
        return read == FileRead::IoError ? DiskRead::IoError
                                         : DiskRead::Miss;
    json::Value line;
    std::string error;
    if (!json::parse(text, line, error) ||
        line.kind() != json::Kind::Object)
        return DiskRead::Miss;
    const json::Value *kind = line.find("kind");
    if (kind == nullptr || kind->kind() != json::Kind::String ||
        kind->asString() != kResponseCacheKind)
        return DiskRead::Miss;
    const json::Value *stored_key = line.find("cache_key");
    if (stored_key == nullptr ||
        stored_key->kind() != json::Kind::String ||
        stored_key->asString() != key)
        return DiskRead::Miss;
    const json::Value *stored_prune = line.find("prune");
    if (stored_prune == nullptr ||
        stored_prune->kind() != json::Kind::Bool ||
        stored_prune->asBool() != prune)
        return DiskRead::Miss;
    const json::Value *response = line.find("response");
    if (response == nullptr)
        return DiskRead::Miss;
    ServiceResponse decoded;
    if (!decodeServiceResponse(*response, decoded, error))
        return DiskRead::Miss;
    // Only replay successful executions; a memoized failure would
    // pin a transient error forever.
    if (!decoded.ok || decoded.cacheKey != key)
        return DiskRead::Miss;
    out = std::move(decoded);
    return DiskRead::Hit;
}

bool
CampaignService::storeResponseToDisk(
    const std::string &key, bool prune,
    const ServiceResponse &response) const
{
    json::Value obj = json::Value::object();
    obj.set("kind", json::Value::string(kResponseCacheKind));
    obj.set("cache_key", json::Value::string(key));
    obj.set("prune", json::Value::boolean(prune));
    obj.set("response", encodeServiceResponse(response));
    return writeFileAtomic(responsePath(responseKey(key, prune)),
                           obj.dump() + "\n");
}

bool
CampaignService::diskEnabled() const
{
    if (opts_.cacheDir.empty())
        return false;
    std::lock_guard<std::mutex> lock(mu_);
    return !diskDisabled_;
}

void
CampaignService::noteDiskOutcome(bool ok)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (ok) {
        diskFailStreak_ = 0;
        return;
    }
    ++stats_.diskErrors;
    ++diskFailStreak_;
    if (opts_.diskFailureLimit != 0 && !diskDisabled_ &&
        diskFailStreak_ >= opts_.diskFailureLimit) {
        diskDisabled_ = true;
        warn("disk cache disabled after %s consecutive I/O "
             "failures; serving from memory only",
             diskFailStreak_);
    }
}

ServiceResponse
CampaignService::execute(const ServiceRequest &request,
                         const Progress &progress)
{
    ServiceResponse response;
    response.op = "campaign";

    // The request's campaign never touches service-side files:
    // artifacts are captured in memory and travel in the response.
    CampaignConfig cfg = request.config;
    cfg.telemetryOut.clear();
    cfg.resumeFrom.clear();
    cfg.shard = ShardSpec{};
    cfg.telemetryCapture = true;

    const std::vector<ConfigError> errors = cfg.validate();
    if (!errors.empty()) {
        response.error = "config: " + errors[0].field + ": " +
                         errors[0].message;
        return response;
    }

    response.cacheKey = cfg.cacheKey();

    // Response memoization: an exact repeat of a completed request
    // replays the recorded response without executing.  Timing-mode
    // responses carry wall-clock fields and are never memoized.
    if (diskEnabled() && !cfg.telemetryTiming) {
        const DiskRead memo = loadResponseFromDisk(
            response.cacheKey, cfg.prune, response);
        if (memo == DiskRead::IoError)
            noteDiskOutcome(false);
        else
            noteDiskOutcome(true);
        if (memo == DiskRead::Hit) {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.responseHits;
            response.cacheHit = true;
            response.cacheSource = "response";
            return response;
        }
    }

    // With no memory budget *and* no disk directory there is nothing
    // to share, so single-flight dedup is off too (every request
    // prepares cold — the documented cacheBudgetBytes == 0 contract).
    const bool cache_enabled =
        opts_.cacheBudgetBytes > 0 || !opts_.cacheDir.empty();

    std::shared_ptr<const PreparedCampaign> prep;
    std::shared_ptr<PrepFlight> flight;
    bool leader = false;
    if (cache_enabled) {
        std::lock_guard<std::mutex> lock(mu_);
        prep = lockedLruFind(response.cacheKey);
        if (prep != nullptr) {
            ++stats_.hits;
            response.cacheSource = "memory";
        } else if (const auto it = flights_.find(response.cacheKey);
                   it != flights_.end()) {
            flight = it->second;
        } else {
            flight = std::make_shared<PrepFlight>();
            flights_.emplace(response.cacheKey, flight);
            leader = true;
            ++stats_.misses;
        }
    }

    if (flight != nullptr && !leader) {
        // Another request is preparing this key right now; share its
        // golden run instead of simulating a duplicate.
        std::unique_lock<std::mutex> wait_lock(flight->mu);
        flight->cv.wait(wait_lock, [&] { return flight->done; });
        if (flight->prep == nullptr) {
            response.error = flight->error.empty()
                                 ? "prepare failed in a racing "
                                   "request"
                                 : flight->error;
            return response;
        }
        prep = flight->prep;
        response.cacheSource = "flight";
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.hits;
        ++stats_.coalesced;
    }

    bool published = false;
    try {
        // Chaos seam: a prepare-time resource failure.  Thrown (not
        // returned) so it exercises the same recovery path a real
        // allocation failure in the engine would take.
        if (failpoint::check("prep.alloc").kind ==
            failpoint::Action::Kind::Error)
            throw std::bad_alloc();

        InjectionCampaign campaign(cfg);
        if (prep == nullptr && leader && diskEnabled()) {
            bool io_error = false;
            prep = loadPreparedFromDisk(cfg, response.cacheKey,
                                        io_error);
            noteDiskOutcome(!io_error);
            if (prep != nullptr) {
                response.cacheSource = "disk";
                std::lock_guard<std::mutex> lock(mu_);
                ++stats_.diskHits;
            }
        }
        if (prep != nullptr) {
            campaign.adoptPrepared(prep);
            response.cacheHit = true;
        }
        if (leader) {
            if (prep == nullptr) {
                prep = campaign.prepared();
                if (diskEnabled()) {
                    const bool stored = storePreparedToDisk(
                        response.cacheKey, *prep);
                    noteDiskOutcome(stored);
                    if (stored) {
                        std::lock_guard<std::mutex> lock(mu_);
                        ++stats_.diskStores;
                    }
                }
            }
            cacheInsert(response.cacheKey, prep);
            publishFlight(response.cacheKey, *flight, prep, "");
            published = true;
        }
        const CampaignResult result = campaign.run(progress);

        response.runsTotal =
            result.records.size() + result.pruned.size();
        const Parser parser;
        response.counts = result.classify(parser);
        response.vulnerability = response.counts.vulnerability();
        response.telemetryRuns = result.telemetryRuns;
        response.telemetrySummary = result.telemetrySummary;
        response.ok = true;
        if (diskEnabled() && !cfg.telemetryTiming) {
            const bool stored = storeResponseToDisk(
                response.cacheKey, cfg.prune, response);
            noteDiskOutcome(stored);
            if (stored) {
                std::lock_guard<std::mutex> lock(mu_);
                ++stats_.responseStores;
            }
        }
    } catch (const dfi::FatalError &err) {
        response.ok = false;
        response.error = err.what();
    } catch (const std::bad_alloc &) {
        // Transient resource exhaustion: load may subside, so the
        // client is told it can retry (unlike a config error, which
        // a retry would only repeat).
        response.ok = false;
        response.retryable = true;
        response.error = "internal error: out of memory during "
                         "campaign preparation";
    } catch (const std::exception &err) {
        // Resource failures (bad_alloc, thread-spawn system_error)
        // must come back as a !ok response, not unwind through the
        // queue bookkeeping or a detached handler thread.
        response.ok = false;
        response.error =
            std::string("internal error: ") + err.what();
    }
    if (leader && !published) {
        // The leader failed before publishing; wake the followers
        // with the error instead of leaving them blocked forever.
        publishFlight(response.cacheKey, *flight, nullptr,
                      response.error);
    }
    return response;
}

ServiceResponse
CampaignService::executeQueued(const ServiceRequest &request,
                               const Progress &progress)
{
    // Backpressure rejections carry the request's op and are marked
    // retryable: the client may resubmit once load subsides, unlike
    // hard errors (bad config, engine failure).
    const auto reject = [&](std::string why) {
        ServiceResponse response;
        response.op = request.op;
        response.retryable = true;
        response.error = std::move(why);
        return response;
    };

    const std::uint32_t workers =
        std::max<std::uint32_t>(1, opts_.workers);
    std::uint64_t ticket = 0;
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (draining_)
            return reject("service is draining");
        if (active_ >= opts_.queueCapacity)
            return reject("queue full (" +
                          std::to_string(opts_.queueCapacity) +
                          " requests in flight)");
        std::uint32_t &client_count = inFlight_[request.client];
        if (client_count >= opts_.perClientInFlight)
            return reject("client quota exceeded (" +
                          std::to_string(opts_.perClientInFlight) +
                          " in flight for '" + request.client +
                          "')");
        ++client_count;
        ++active_;
        ticket = nextTicket_++;
        waiting_.push_back(ticket);
        // FIFO over bounded workers: start as soon as this ticket
        // reaches the queue front *and* a worker slot is free.
        cv_.wait(lock, [&] {
            return waiting_.front() == ticket && running_ < workers;
        });
        waiting_.pop_front();
        ++running_;
    }
    // The queue front changed; later tickets may now be eligible.
    cv_.notify_all();

    // Completion bookkeeping must run even if execute() throws:
    // running_ dropping is what frees a slot for every later ticket.
    struct Completion
    {
        CampaignService &service;
        const std::string &client;

        ~Completion()
        {
            {
                std::lock_guard<std::mutex> lock(service.mu_);
                auto it = service.inFlight_.find(client);
                if (it != service.inFlight_.end() &&
                    --it->second == 0)
                    service.inFlight_.erase(it);
                --service.active_;
                --service.running_;
            }
            service.cv_.notify_all();
        }
    } completion{*this, request.client};

    return execute(request, progress);
}

void
CampaignService::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    draining_ = true;
    cv_.wait(lock, [&] { return active_ == 0; });
}

CampaignService::CacheStats
CampaignService::cacheStats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    CacheStats stats = stats_;
    stats.entries = lru_.size();
    stats.bytes = cacheBytes_;
    stats.diskDisabled = diskDisabled_;
    return stats;
}

json::Value
CampaignService::statsJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    json::Value cache = json::Value::object();
    cache.set("hits", json::Value::unsignedInt(stats_.hits));
    cache.set("misses", json::Value::unsignedInt(stats_.misses));
    cache.set("evictions",
              json::Value::unsignedInt(stats_.evictions));
    cache.set("entries", json::Value::unsignedInt(lru_.size()));
    cache.set("bytes", json::Value::unsignedInt(cacheBytes_));
    cache.set("budget_bytes",
              json::Value::unsignedInt(opts_.cacheBudgetBytes));
    cache.set("coalesced",
              json::Value::unsignedInt(stats_.coalesced));
    cache.set("disk_hits",
              json::Value::unsignedInt(stats_.diskHits));
    cache.set("disk_stores",
              json::Value::unsignedInt(stats_.diskStores));
    cache.set("response_hits",
              json::Value::unsignedInt(stats_.responseHits));
    cache.set("response_stores",
              json::Value::unsignedInt(stats_.responseStores));
    cache.set("disk_errors",
              json::Value::unsignedInt(stats_.diskErrors));
    cache.set("disk_disabled",
              json::Value::boolean(diskDisabled_));
    json::Value queue = json::Value::object();
    queue.set("active", json::Value::unsignedInt(active_));
    queue.set("running", json::Value::unsignedInt(running_));
    queue.set("workers",
              json::Value::unsignedInt(
                  std::max<std::uint32_t>(1, opts_.workers)));
    queue.set("capacity",
              json::Value::unsignedInt(opts_.queueCapacity));
    queue.set("per_client_quota",
              json::Value::unsignedInt(opts_.perClientInFlight));
    json::Value stats = json::Value::object();
    stats.set("cache", std::move(cache));
    stats.set("queue", std::move(queue));
    return stats;
}

} // namespace dfi::inject

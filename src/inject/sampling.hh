/**
 * @file
 * Statistical fault sampling (Leveugle et al., DATE 2009 — ref [20]
 * of the paper, used in Section IV.A).
 *
 * Given the fault population (bits of the structure x cycles of the
 * workload), the desired confidence and error margin, the formula
 *
 *      n = N / (1 + e^2 (N - 1) / (t^2 p (1 - p)))
 *
 * yields the number of injections required.  With 99% confidence and
 * a 3% margin this gives the paper's 1843 runs; relaxing the margin
 * to 5% gives 663.
 */

#ifndef DFI_INJECT_SAMPLING_HH
#define DFI_INJECT_SAMPLING_HH

#include <cstdint>

namespace dfi::inject
{

/** Two-sided normal quantile for the given confidence (e.g. 0.99). */
double confidenceZScore(double confidence);

/**
 * Required number of injections.
 * @param population  total fault population N (bits x cycles);
 *                    pass 0 for the infinite-population limit
 * @param confidence  e.g. 0.99
 * @param margin      error margin e, e.g. 0.03
 * @param p           estimated proportion (0.5 = worst case)
 */
std::uint64_t requiredInjections(std::uint64_t population,
                                 double confidence, double margin,
                                 double p = 0.5);

/**
 * Achieved error margin when running `injections` runs against a
 * population (the paper quotes 2.88% for 2000 runs at 99%).
 */
double achievedMargin(std::uint64_t injections,
                      std::uint64_t population, double confidence,
                      double p = 0.5);

} // namespace dfi::inject

#endif // DFI_INJECT_SAMPLING_HH

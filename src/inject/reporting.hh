/**
 * @file
 * Campaign reporting layer (layer 3 of the execution engine).
 *
 * Executors run tasks on worker threads; everything those workers
 * report — user progress callbacks, aggregated common/stats counters,
 * the telemetry stream — funnels through a CampaignReporter, which
 * serialises the calls behind one mutex.  The user-visible sequence of
 * progress callbacks (done, total) is identical for every executor:
 * `done` is the count of finished tasks, which advances 1..total
 * regardless of the order in which the tasks actually finish.
 *
 * The reporter is also the engine's *ordered-commit point*: workers
 * hand each finished (task, result) pair to commit(), which reorders
 * racing completions behind the plan-order frontier (RunTask::ordinal
 * — equal to runId for a full plan, renumbered 0..n-1 for shard and
 * resume views) and replays them to the commit sink strictly in that
 * order.  Consumers attached there (inject/telemetry.hh) therefore
 * observe the exact same sequence for every executor and job count —
 * that is what makes campaign artifacts byte-identical across
 * `--jobs` values.
 *
 * (Log lines from workers need no help from this layer: common/logging
 * emits each line atomically; see logging.cc.)
 */

#ifndef DFI_INJECT_REPORTING_HH
#define DFI_INJECT_REPORTING_HH

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>

#include "common/stats.hh"

namespace dfi::inject
{

struct RunTask;
struct TaskResult;

/** Thread-safe funnel for worker-side campaign reporting. */
class CampaignReporter
{
  public:
    using Progress = std::function<void(std::uint64_t done,
                                        std::uint64_t total)>;

    /**
     * Ordered-commit consumer: invoked once per task, strictly in
     * plan (ascending-runId) order, under the reporter lock.  The
     * references are only valid for the duration of the call.
     */
    using CommitSink = std::function<void(const RunTask &task,
                                          const TaskResult &result)>;

    CampaignReporter(Progress progress, std::uint64_t total)
        : progress_(std::move(progress)), total_(total)
    {}

    /** Attach the ordered-commit consumer (before the executor runs). */
    void setCommitSink(CommitSink sink) { sink_ = std::move(sink); }

    /**
     * Record one finished task: merges its counters, bumps the done
     * counter, invokes the progress callback, and replays every
     * result at the runId frontier to the commit sink in order.  The
     * caller must keep `task` and `result` alive and immutable until
     * the executor returns (both executors commit into stable
     * per-runId storage, so this holds by construction).
     */
    void commit(const RunTask &task, const TaskResult &result);

    /**
     * Record one finished task: bumps the done counter and invokes
     * the progress callback (if any) while holding the lock, so
     * callbacks never interleave and `done` is strictly increasing.
     */
    void
    taskDone()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        taskDoneLocked();
    }

    /** Merge a finished run's counters into the campaign aggregate. */
    void
    addStats(const dfi::StatSet &stats)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.merge(stats);
    }

    /** Tasks finished so far. */
    std::uint64_t
    done() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return done_;
    }

    /**
     * Campaign-wide counter aggregate.  Only read this after the
     * executor returned (all workers joined); counter addition is
     * commutative, so the aggregate is identical for any completion
     * order.
     */
    const dfi::StatSet &aggregateStats() const { return stats_; }

  private:
    void taskDoneLocked();

    Progress progress_;
    CommitSink sink_;
    std::uint64_t total_;
    std::uint64_t done_ = 0;
    dfi::StatSet stats_;

    /** Next ordinal the sink has not seen yet (the commit frontier). */
    std::uint64_t frontier_ = 0;
    /** Finished tasks still ahead of the frontier, keyed by ordinal. */
    std::map<std::uint64_t,
             std::pair<const RunTask *, const TaskResult *>>
        pending_;

    mutable std::mutex mutex_;
};

} // namespace dfi::inject

#endif // DFI_INJECT_REPORTING_HH

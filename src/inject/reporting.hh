/**
 * @file
 * Campaign reporting layer (layer 3 of the execution engine).
 *
 * Executors run tasks on worker threads; everything those workers
 * report — user progress callbacks, aggregated common/stats counters
 * — funnels through a CampaignReporter, which serialises the calls
 * behind one mutex.  The user-visible sequence of progress callbacks
 * (done, total) is identical for every executor: `done` is the count
 * of finished tasks, which advances 1..total regardless of the order
 * in which the tasks actually finish.
 *
 * (Log lines from workers need no help from this layer: common/logging
 * emits each line atomically; see logging.cc.)
 */

#ifndef DFI_INJECT_REPORTING_HH
#define DFI_INJECT_REPORTING_HH

#include <cstdint>
#include <functional>
#include <mutex>

#include "common/stats.hh"

namespace dfi::inject
{

/** Thread-safe funnel for worker-side campaign reporting. */
class CampaignReporter
{
  public:
    using Progress = std::function<void(std::uint64_t done,
                                        std::uint64_t total)>;

    CampaignReporter(Progress progress, std::uint64_t total)
        : progress_(std::move(progress)), total_(total)
    {}

    /**
     * Record one finished task: bumps the done counter and invokes
     * the progress callback (if any) while holding the lock, so
     * callbacks never interleave and `done` is strictly increasing.
     */
    void
    taskDone()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++done_;
        if (progress_)
            progress_(done_, total_);
    }

    /** Merge a finished run's counters into the campaign aggregate. */
    void
    addStats(const dfi::StatSet &stats)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.merge(stats);
    }

    /** Tasks finished so far. */
    std::uint64_t
    done() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return done_;
    }

    /**
     * Campaign-wide counter aggregate.  Only read this after the
     * executor returned (all workers joined); counter addition is
     * commutative, so the aggregate is identical for any completion
     * order.
     */
    const dfi::StatSet &aggregateStats() const { return stats_; }

  private:
    Progress progress_;
    std::uint64_t total_;
    std::uint64_t done_ = 0;
    dfi::StatSet stats_;
    mutable std::mutex mutex_;
};

} // namespace dfi::inject

#endif // DFI_INJECT_REPORTING_HH

#include "inject/executor.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

namespace dfi::inject
{

std::uint32_t
resolveJobs(std::uint32_t requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

std::vector<TaskResult>
SerialExecutor::run(const CampaignPlan &plan, const TaskRunner &runner,
                    CampaignReporter &reporter)
{
    std::vector<TaskResult> results;
    results.reserve(plan.tasks().size());
    for (const RunTask &task : plan.tasks()) {
        results.push_back(runner(task));
        reporter.commit(task, results.back());
    }
    return results;
}

std::vector<TaskResult>
ThreadPoolExecutor::run(const CampaignPlan &plan,
                        const TaskRunner &runner,
                        CampaignReporter &reporter)
{
    const std::vector<RunTask> &tasks = plan.tasks();
    std::vector<TaskResult> results(tasks.size());
    // One error slot per task: after the join, the lowest-runId error
    // is rethrown, so failures are as deterministic as the runs.
    std::vector<std::exception_ptr> errors(tasks.size());
    std::atomic<std::size_t> next{0};
    std::atomic<bool> aborted{false};

    auto work = [&] {
        while (!aborted.load(std::memory_order_relaxed)) {
            const std::size_t index =
                next.fetch_add(1, std::memory_order_relaxed);
            if (index >= tasks.size())
                return;
            try {
                results[index] = runner(tasks[index]);
                // The slots are stable storage: the reporter's
                // ordered-commit sink may read them until the join.
                reporter.commit(tasks[index], results[index]);
            } catch (...) {
                errors[index] = std::current_exception();
                aborted.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    const std::size_t workers = std::min<std::size_t>(
        jobs_, tasks.empty() ? 1 : tasks.size());
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        pool.emplace_back(work);
    for (std::thread &worker : pool)
        worker.join();

    for (const std::exception_ptr &error : errors) {
        if (error)
            std::rethrow_exception(error);
    }
    return results;
}

std::unique_ptr<Executor>
makeExecutor(const ExecutorConfig &config)
{
    const std::uint32_t jobs = resolveJobs(config.jobs);
    if (jobs <= 1)
        return std::make_unique<SerialExecutor>();
    return std::make_unique<ThreadPoolExecutor>(jobs);
}

} // namespace dfi::inject

/**
 * @file
 * Campaign telemetry: schema-versioned, machine-readable run
 * artifacts, and the differential comparison over them.
 *
 * The paper's methodology is differential — MaFIN vs GeFIN results
 * are only meaningful because every run is logged, parsed and
 * *compared*.  This layer gives campaigns the machine-readable
 * counterpart of that logs repository:
 *
 *  - a JSONL run stream: one header line (schema version + config
 *    echo + golden reference + campaign-wide run count), then one
 *    flat JSON record per RunTask, emitted at the executor's
 *    ordered-commit point so the stream is byte-identical for any
 *    `--jobs` value — and streamed to disk line-by-line, so a killed
 *    campaign leaves a resumable partial;
 *  - a summary JSON document: config echo, per-class counts and
 *    percentages, and a run-length histogram.
 *
 * Scale-out rides on the same artifacts: a shard campaign
 * (`--shard I/N`) emits the stream restricted to its runs under the
 * *same* header, `inject/merge.hh` recombines shard streams into the
 * unsharded bytes, and `--resume` replays a partial stream's records
 * (tolerating a torn final line) before executing only the rest.
 *
 * Determinism contract: with timing capture off (the default) every
 * byte of both artifacts is a pure function of (config, program,
 * seed) — independent not only of hosts and `--jobs`, but of every
 * execution *strategy* knob (checkpointing on/off, checkpoint count
 * and budget).  Strategy-dependent measurements — wall-clock micros,
 * the executor job count, post-restore simulated cycles, restore
 * cost — are "volatile" fields, written as zero unless timing
 * capture is requested, and ignored by exact comparison either way;
 * strategy knobs are likewise excluded from the config echo.  See
 * DESIGN.md §7 for the schema reference and the version-bump policy.
 */

#ifndef DFI_INJECT_TELEMETRY_HH
#define DFI_INJECT_TELEMETRY_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/json.hh"
#include "inject/campaign.hh"
#include "inject/parser.hh"
#include "inject/plan.hh"

namespace dfi::inject
{

/**
 * Telemetry schema version.  Bump policy (DESIGN.md §7): adding a
 * field is a minor change and does NOT bump the version (readers
 * ignore unknown fields); renaming, removing, or changing the
 * meaning/unit of an existing field bumps it and requires
 * regenerating `results/golden/`.
 *
 * v2: `sim_cycles` became volatile (an execution-strategy
 * measurement, zero unless timing capture is on), the volatile
 * `restore_us` field was added, the summary histogram moved from
 * simulated cycles to deterministic run lengths (`run_cycles`), and
 * the checkpoint knobs left the config echo — so artifacts are
 * byte-identical with checkpointing on or off.
 *
 * v3: the planning pipeline gained static classification and
 * equivalence pruning (inject/prune.hh).  The header and summary
 * carry a volatile `prune` object (`pruned_static` / `pruned_equiv` /
 * `simulated` campaign-wide counts) and a volatile `generator` build
 * echo; every record carries a volatile `prune_class` (1-based
 * equivalence-class id, 0 outside any class); and the config echo
 * gained the outcome-relevant `exhaustive` flag.  Pruning itself is
 * an execution strategy: pruned and unpruned artifacts of the same
 * campaign are byte-identical outside the volatile fields.
 */
constexpr std::uint64_t kTelemetrySchemaVersion = 3;

/** Artifact kind tags (the "kind" member of the header/document). */
inline constexpr const char *kTelemetryRunsKind = "dfi-telemetry";
inline constexpr const char *kTelemetrySummaryKind = "dfi-summary";

/** Telemetry capture options. */
struct TelemetryOptions
{
    /**
     * Record real wall-clock micros and the executor job count.
     * Off by default: the volatile fields are written as zero so the
     * artifacts are byte-identical across hosts and `--jobs` values.
     */
    bool captureTiming = false;
};

/** One JSONL run record, decoded. */
struct TelemetryRecord
{
    std::uint64_t runId = 0;
    std::uint64_t seed = 0;
    std::string component;
    std::string structure;     //!< first mask's target structure
    std::uint64_t entry = 0;   //!< first mask's entry
    std::uint64_t bit = 0;     //!< first mask's bit
    std::string faultType;
    std::uint64_t injectionCycle = 0; //!< earliest mask cycle
    std::uint64_t maskCount = 0;      //!< masks in this fault group
    std::string outcome;              //!< class name (default parser)
    std::string subclass;
    std::uint64_t instructions = 0;   //!< retired instructions
    std::uint64_t cycles = 0;         //!< run length in sim cycles
    std::uint64_t simCycles = 0;      //!< post-restore; volatile
    std::uint64_t restoreMicros = 0;  //!< volatile
    std::uint64_t wallMicros = 0;     //!< volatile
    std::uint64_t jobs = 0;           //!< volatile
    /**
     * 1-based fault-equivalence class id (0 = not in any class).
     * Volatile: a strategy annotation — pruned and unpruned streams
     * differ here but nowhere else.
     */
    std::uint64_t pruneClass = 0;

    json::Value toJson() const;
};

/** A parsed telemetry artifact (run stream or summary). */
struct TelemetryFile
{
    std::string kind;      //!< kTelemetryRunsKind or ...SummaryKind
    json::Value header;    //!< header line / whole summary document
    std::vector<TelemetryRecord> records; //!< run streams only

    /**
     * Non-fatal reader diagnostic; empty when clean.  Set when a
     * torn trailing line (the signature of a killed writer) was
     * dropped — the parse still succeeds with the complete records.
     */
    std::string warning;
};

/**
 * The deterministic config echo embedded in both artifacts.  Only
 * outcome-relevant knobs appear; execution strategy (jobs,
 * checkpointing, shard selection, resume) is deliberately absent, so
 * artifacts are byte-comparable across strategies and shard streams
 * merge into the unsharded bytes.
 */
json::Value telemetryConfigEcho(const CampaignConfig &config);

/** The golden-run echo embedded in both artifacts. */
json::Value telemetryGoldenEcho(const syskit::RunRecord &golden);

/**
 * The complete runs-stream header object: kind, schema, the volatile
 * `generator` build echo, config echo, golden echo, the campaign-wide
 * run count (`runs_total`, the full plan size even when this process
 * executes only a shard or a resume remainder), and the volatile
 * campaign-wide `prune` tallies.  Shared by the writer, the resume
 * loader (which byte-compares it against a partial stream's header),
 * and dfi-merge (which requires it identical across shards — the
 * prune tallies are campaign-wide precisely so shard headers agree).
 */
json::Value telemetryRunsHeader(const CampaignConfig &config,
                                const syskit::RunRecord &golden,
                                std::uint64_t total_runs,
                                const PruneStats &prune);

/**
 * Order-insensitive accumulation of everything the summary document
 * derives from the run records: class counts, the run-length
 * histogram, and the volatile totals.  The writer feeds it live
 * commits; resume feeds it replayed records; dfi-merge feeds it the
 * merged record set — all three produce identical summaries for
 * identical records because the accumulation is shared.
 */
class SummaryAccumulator
{
  public:
    /** @param golden_cycles golden run length (histogram scale). */
    explicit SummaryAccumulator(std::uint64_t golden_cycles);

    /** Fold in one record (its outcome name must be a known class). */
    void add(const TelemetryRecord &record);

    const ClassCounts &counts() const { return counts_; }
    std::uint64_t runs() const { return counts_.total(); }

    /**
     * Render the summary document for the records folded in so far.
     * `config_echo`/`golden_echo` come from telemetryConfigEcho/
     * telemetryGoldenEcho (writer) or a parsed header (merge);
     * `jobs_echo` is the volatile jobs field (0 unless timing
     * capture is on); `prune` is the campaign-wide tally object
     * (nullptr omits it — pre-v3 streams have none to echo).
     */
    std::string summaryJson(const json::Value &config_echo,
                            const json::Value &golden_echo,
                            std::uint64_t jobs_echo,
                            const PruneStats *prune) const;

  private:
    std::uint64_t goldenCycles_;
    ClassCounts counts_;
    std::uint64_t totalSimCycles_ = 0;
    std::uint64_t totalRestoreMicros_ = 0;
    std::uint64_t totalWallMicros_ = 0;
    std::vector<std::uint64_t> histogram_; //!< run-length buckets
};

/**
 * Builds both artifacts for one campaign.  commit() must be called
 * once per task in ascending-runId order — the executors'
 * ordered-commit point (CampaignReporter::setCommitSink) guarantees
 * exactly that for any plan view and job count.
 *
 * With streamTo() the run stream is additionally appended to disk
 * line-by-line (flushed per record), so a killed campaign leaves a
 * readable partial stream — at worst with one torn trailing line —
 * that `--resume` can finish from.
 */
class TelemetryWriter
{
  public:
    /**
     * @param total_runs campaign-wide run count (plan totalRuns()),
     *        echoed as `runs_total` in the header.
     * @param prune campaign-wide pruning tallies (plan pruneStats()),
     *        echoed in the header and summary.
     */
    TelemetryWriter(const CampaignConfig &config,
                    const syskit::RunRecord &golden,
                    std::uint64_t total_runs, std::uint32_t jobs,
                    const PruneStats &prune, TelemetryOptions options);

    /**
     * Declare the pruned runs of this process's plan view (plan
     * pruned()); their records are synthesized and interleaved into
     * the stream at the right runId positions — statically classified
     * runs as the early-stop (or golden) record the dispatcher would
     * have produced, equivalence-class members as their
     * representative's outcome.  Call before any commit/replay.
     */
    void setPruned(const std::vector<PrunedRun> &pruned);

    /**
     * Stream the run lines to `<base>.jsonl` incrementally (header
     * immediately, one flushed line per record).  Call before any
     * commit/replay; fatal() on I/O failure.
     */
    void streamTo(const std::string &base);

    /**
     * Re-emit one already-completed record verbatim (resume).  Call
     * before the executor runs, in ascending runId order; fatal() on
     * an unknown outcome class or disordered runId (a corrupt or
     * foreign resume stream).
     */
    void replay(const TelemetryRecord &record);

    /** Append one run record (call in ascending runId order). */
    void commit(const RunTask &task, const TaskResult &result);

    /**
     * Flush pruned records queued above the last committed runId.
     * Call after the last commit and before reading runsJsonl() /
     * summaryJson(); writeFiles() does it implicitly.  Idempotent.
     */
    void finalize() { flushAllPruned(); }

    /**
     * The JSONL run stream (header line + one line per record).
     * Complete only after finalize() or writeFiles().
     */
    const std::string &runsJsonl() const { return lines_; }

    /** The summary document (built from the commits so far). */
    std::string summaryJson() const;

    /**
     * Finalize: write `<base>.summary.json`, and `<base>.jsonl` too
     * unless it was already streamed there.  fatal() on I/O failure.
     */
    void writeFiles(const std::string &base);

    const ClassCounts &counts() const { return acc_.counts(); }

  private:
    void appendLine(const std::string &line);
    /** Emit queued pruned records with runId < `run_id`. */
    void flushPrunedBelow(std::uint64_t run_id);
    /** Emit all remaining queued pruned records. */
    void flushAllPruned();
    void emitPruned(const PrunedRun &pruned);
    /** Remember a representative's outcome for member synthesis. */
    void harvestRep(std::uint64_t run_id,
                    const TelemetryRecord &record);

    /** A representative's outcome, fanned out to class members. */
    struct RepOutcome
    {
        std::string outcome;
        std::string subclass;
        std::uint64_t instructions = 0;
        std::uint64_t cycles = 0;
        bool known = false;
    };

    CampaignConfig config_;
    syskit::RunRecord golden_;
    std::uint32_t jobs_;
    PruneStats prune_;
    TelemetryOptions options_;
    Parser parser_;

    std::vector<PrunedRun> prunedQueue_; //!< ascending runId
    std::size_t nextPruned_ = 0;
    std::unordered_map<std::uint64_t, RepOutcome> reps_;

    std::string lines_;
    SummaryAccumulator acc_;
    bool anyEmitted_ = false;
    std::uint64_t lastRunId_ = 0;
    std::ofstream stream_;     //!< open while streaming
    std::string streamPath_;   //!< `<base>.jsonl` being streamed
};

/**
 * Histogram bucket upper bounds, as multiples of the golden run
 * length (the last bucket is unbounded).  The histogram buckets the
 * deterministic run lengths (`cycles`), so it participates in exact
 * comparison regardless of checkpoint placement.
 */
const std::vector<double> &telemetryHistogramEdges();

/**
 * Parse a telemetry artifact from memory.  Returns false (with
 * `error` set) on malformed input — never throws: artifacts are
 * external inputs.
 */
bool parseTelemetry(const std::string &text, TelemetryFile &out,
                    std::string &error);

/** Read + parse a telemetry artifact from disk. */
bool readTelemetryFile(const std::string &path, TelemetryFile &out,
                       std::string &error);

/** Comparison outcome; values are the dfi-diff exit codes. */
enum class DiffOutcome : int
{
    Equal = 0,     //!< no drift
    Drift = 1,     //!< real divergence
    Malformed = 2, //!< unreadable/mismatched inputs
};

struct DiffOptions
{
    /**
     * Exact mode compares every non-volatile field of every record
     * and every non-volatile member of the header/summary.
     * Tolerance mode compares per-class outcome percentages within
     * `tolerancePercent` percentage points (cross-environment
     * statistical comparison).
     */
    bool exact = true;
    double tolerancePercent = 1.0;
};

/**
 * Compare two parsed artifacts of the same kind.  Appends
 * human-readable drift lines to `report`.
 */
DiffOutcome diffTelemetry(const TelemetryFile &a,
                          const TelemetryFile &b,
                          const DiffOptions &options,
                          std::string &report);

/** Convenience: read both paths, then diffTelemetry(). */
DiffOutcome diffTelemetryFiles(const std::string &pathA,
                               const std::string &pathB,
                               const DiffOptions &options,
                               std::string &report);

} // namespace dfi::inject

#endif // DFI_INJECT_TELEMETRY_HH

#include "inject/parser.hh"

#include "common/logging.hh"

namespace dfi::inject
{

std::string
outcomeClassName(OutcomeClass cls)
{
    static const char *names[] = {"Masked", "SDC",   "DUE",
                                  "Timeout", "Crash", "Assert"};
    const auto i = static_cast<std::size_t>(cls);
    if (i >= kNumOutcomeClasses)
        panic("outcomeClassName: bad class %s", i);
    return names[i];
}

bool
outcomeClassFromName(const std::string &name, OutcomeClass &out)
{
    for (std::size_t i = 0; i < kNumOutcomeClasses; ++i) {
        const auto cls = static_cast<OutcomeClass>(i);
        if (outcomeClassName(cls) == name) {
            out = cls;
            return true;
        }
    }
    return false;
}

Classification
Parser::classify(const syskit::RunRecord &golden,
                 const syskit::RunRecord &faulty) const
{
    Classification result;

    if (faulty.earlyStopMasked) {
        result.cls = OutcomeClass::Masked;
        result.subclass = "early-stop:" + faulty.earlyStopReason;
        return result;
    }

    switch (faulty.term) {
      case syskit::Termination::SimAssert:
        result.cls = OutcomeClass::Assert;
        result.subclass = "sim-assert";
        return result;
      case syskit::Termination::SimCrash:
        result.cls = cfg_.simulatorCrashAsAssert ? OutcomeClass::Assert
                                                 : OutcomeClass::Crash;
        result.subclass = "simulator-crash";
        return result;
      case syskit::Termination::ProcessCrash:
        result.cls = OutcomeClass::Crash;
        result.subclass = "process-crash";
        return result;
      case syskit::Termination::KernelPanic:
        result.cls = OutcomeClass::Crash;
        result.subclass = "system-crash";
        return result;
      case syskit::Termination::CycleLimit:
        result.cls = OutcomeClass::Timeout;
        // Crude deadlock/livelock discrimination: a deadlocked core
        // stops committing entirely; a livelocked one keeps retiring
        // wild instructions.
        result.subclass = faulty.instructions >= golden.instructions
                              ? "livelock"
                              : "deadlock";
        return result;
      case syskit::Termination::Exited:
        break;
    }

    const bool output_matches = faulty.output == golden.output &&
                                faulty.exitCode == golden.exitCode;
    if (!faulty.dueEvents.empty()) {
        result.cls = OutcomeClass::Due;
        if (cfg_.splitDue)
            result.subclass = output_matches ? "false-due" : "true-due";
        return result;
    }
    result.cls =
        output_matches ? OutcomeClass::Masked : OutcomeClass::Sdc;
    return result;
}

void
ClassCounts::add(const ClassCounts &other)
{
    for (std::size_t i = 0; i < kNumOutcomeClasses; ++i)
        counts[i] += other.counts[i];
}

std::uint64_t
ClassCounts::total() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t c : counts)
        sum += c;
    return sum;
}

double
ClassCounts::percent(OutcomeClass cls) const
{
    // Zero-run campaigns must report 0.0, never NaN: telemetry
    // percentages feed byte-compared artifacts.
    const std::uint64_t sum = total();
    if (sum == 0)
        return 0.0;
    return 100.0 * static_cast<double>(get(cls)) /
           static_cast<double>(sum);
}

double
ClassCounts::vulnerability() const
{
    // Guard the zero-run campaign here too: with no runs there is no
    // evidence of vulnerability, so report 0, not 100 - 0.
    if (total() == 0)
        return 0.0;
    return 100.0 - percent(OutcomeClass::Masked);
}

} // namespace dfi::inject

#include "inject/report.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"
#include "common/stats.hh"

namespace dfi::inject
{

FigureReport::FigureReport(std::string title,
                           std::vector<std::string> setups)
    : title_(std::move(title)), setups_(std::move(setups))
{
}

void
FigureReport::add(const std::string &benchmark,
                  const std::string &setup, const ClassCounts &counts)
{
    if (std::find(benchmarks_.begin(), benchmarks_.end(), benchmark) ==
        benchmarks_.end()) {
        benchmarks_.push_back(benchmark);
    }
    cells_.push_back(FigureCell{benchmark, setup, counts});
}

const FigureCell *
FigureReport::find(const std::string &benchmark,
                   const std::string &setup) const
{
    for (const FigureCell &cell : cells_) {
        if (cell.benchmark == benchmark && cell.setup == setup)
            return &cell;
    }
    return nullptr;
}

ClassCounts
FigureReport::average(const std::string &setup) const
{
    ClassCounts sum;
    for (const FigureCell &cell : cells_) {
        if (cell.setup == setup)
            sum.add(cell.counts);
    }
    return sum;
}

double
FigureReport::vulnerability(const std::string &benchmark,
                            const std::string &setup) const
{
    const FigureCell *cell = find(benchmark, setup);
    if (cell == nullptr)
        fatal("figure '%s' has no cell %s/%s", title_, benchmark,
              setup);
    return cell->counts.vulnerability();
}

std::string
FigureReport::renderTable() const
{
    TextTable table;
    std::vector<std::string> header = {"benchmark", "setup"};
    for (std::size_t c = 0; c < kNumOutcomeClasses; ++c)
        header.push_back(
            outcomeClassName(static_cast<OutcomeClass>(c)));
    header.push_back("vulnerability");
    table.header(std::move(header));

    auto add_row = [&](const std::string &bench,
                       const std::string &setup,
                       const ClassCounts &counts) {
        std::vector<std::string> row = {bench, setup};
        for (std::size_t c = 0; c < kNumOutcomeClasses; ++c) {
            row.push_back(formatFixed(
                counts.percent(static_cast<OutcomeClass>(c)), 2));
        }
        row.push_back(formatFixed(counts.vulnerability(), 2));
        table.row(std::move(row));
    };

    for (const std::string &bench : benchmarks_) {
        for (const std::string &setup : setups_) {
            const FigureCell *cell = find(bench, setup);
            if (cell != nullptr)
                add_row(bench, setup, cell->counts);
        }
    }
    for (const std::string &setup : setups_)
        add_row("AVERAGE", setup, average(setup));

    return title_ + "\n" + table.render();
}

std::string
FigureReport::renderBars(int width) const
{
    // One character per class, stacked: M . S D T C A
    static const char glyphs[kNumOutcomeClasses] = {'.', 'S', 'D',
                                                    'T', 'C', 'A'};
    std::ostringstream os;
    os << title_ << "\n";
    os << "legend: '.'=Masked S=SDC D=DUE T=Timeout C=Crash A=Assert\n";
    auto bar = [&](const ClassCounts &counts) {
        std::string s;
        int used = 0;
        for (std::size_t c = 0; c < kNumOutcomeClasses; ++c) {
            const double pct =
                counts.percent(static_cast<OutcomeClass>(c));
            int chars = static_cast<int>(
                std::lround(pct / 100.0 * width));
            chars = std::min(chars, width - used);
            s.append(static_cast<std::size_t>(chars), glyphs[c]);
            used += chars;
        }
        s.append(static_cast<std::size_t>(width - used), ' ');
        return s;
    };
    auto emit = [&](const std::string &bench) {
        for (const std::string &setup : setups_) {
            const FigureCell *cell = find(bench, setup);
            if (cell == nullptr)
                continue;
            os << "  " << bench;
            os << std::string(bench.size() < 8 ? 8 - bench.size() : 1,
                              ' ');
            os << setup
               << std::string(setup.size() < 6 ? 6 - setup.size() : 1,
                              ' ')
               << '|' << bar(cell->counts) << "| "
               << formatFixed(cell->counts.vulnerability(), 1)
               << "% vulnerable\n";
        }
    };
    for (const std::string &bench : benchmarks_)
        emit(bench);
    for (const std::string &setup : setups_) {
        const ClassCounts avg = average(setup);
        os << "  AVERAGE " << setup
           << std::string(setup.size() < 6 ? 6 - setup.size() : 1, ' ')
           << '|' << bar(avg) << "| "
           << formatFixed(avg.vulnerability(), 1) << "% vulnerable\n";
    }
    return os.str();
}

namespace
{

json::Value
countsJson(const ClassCounts &counts)
{
    json::Value cell = json::Value::object();
    json::Value classes = json::Value::object();
    for (std::size_t c = 0; c < kNumOutcomeClasses; ++c) {
        const auto cls = static_cast<OutcomeClass>(c);
        json::Value entry = json::Value::object();
        entry.set("count", json::Value::unsignedInt(counts.get(cls)));
        entry.set("percent", json::Value::number(counts.percent(cls)));
        classes.set(outcomeClassName(cls), std::move(entry));
    }
    cell.set("runs", json::Value::unsignedInt(counts.total()));
    cell.set("classes", std::move(classes));
    cell.set("vulnerability_percent",
             json::Value::number(counts.vulnerability()));
    return cell;
}

} // namespace

json::Value
FigureReport::toJson() const
{
    json::Value doc = json::Value::object();
    doc.set("kind", json::Value::string("dfi-figure"));
    doc.set("title", json::Value::string(title_));
    json::Value cells = json::Value::array();
    for (const std::string &bench : benchmarks_) {
        for (const std::string &setup : setups_) {
            const FigureCell *cell = find(bench, setup);
            if (cell == nullptr)
                continue;
            json::Value entry = json::Value::object();
            entry.set("benchmark", json::Value::string(bench));
            entry.set("setup", json::Value::string(setup));
            for (const auto &[key, value] :
                 countsJson(cell->counts).members())
                entry.set(key, value);
            cells.push(std::move(entry));
        }
    }
    doc.set("cells", std::move(cells));
    json::Value averages = json::Value::object();
    for (const std::string &setup : setups_)
        averages.set(setup, countsJson(average(setup)));
    doc.set("averages", std::move(averages));
    return doc;
}

std::string
FigureReport::renderSummary() const
{
    std::ostringstream os;
    os << title_ << " — average vulnerability per setup\n";
    std::vector<double> vulns;
    for (const std::string &setup : setups_) {
        const double v = average(setup).vulnerability();
        vulns.push_back(v);
        os << "  " << setup << ": " << formatFixed(v, 2) << "%\n";
    }
    if (vulns.size() == 3) {
        os << "  |M-x86 - G-x86|  = "
           << formatFixed(std::abs(vulns[0] - vulns[1]), 2)
           << " percentile points (tool difference)\n";
        os << "  |G-x86 - G-ARM|  = "
           << formatFixed(std::abs(vulns[1] - vulns[2]), 2)
           << " percentile points (ISA difference)\n";
    }
    return os.str();
}

} // namespace dfi::inject

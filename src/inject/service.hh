/**
 * @file
 * Persistent campaign service with a content-addressed warm artifact
 * cache (the scale-out layer above the campaign engine).
 *
 * Every `dfi-campaign` invocation re-simulates the golden run and
 * rebuilds the checkpoint store from scratch, even though those
 * artifacts are a pure function of (program, core model, checkpoint
 * knobs) and PR 3 made them COW-backed shared state.  The
 * CampaignService amortizes that cost across requests the way a
 * simulator fleet amortizes it across users:
 *
 *  - requests are content-addressed by CampaignConfig::cacheKey();
 *    a repeat key adopts the cached PreparedCampaign (golden run +
 *    checkpoints) and skips prepare() entirely — the request goes
 *    straight to plan/execute;
 *  - cached preparations live in an LRU keyed by a byte budget
 *    (Options::cacheBudgetBytes), charged at
 *    PreparedCampaign::approxBytes(); cold entries evict first;
 *  - preparation is single-flight: when several racing requests miss
 *    on the same key, exactly one (the leader) runs prepare() and the
 *    rest block until the shared artifacts are published — the fleet
 *    never simulates the same golden run twice concurrently;
 *  - queued execution admits in FIFO order onto a bounded pool of
 *    Options::workers execution slots (each campaign may still use
 *    `jobs` threads internally), with a per-client in-flight quota
 *    and a global admission capacity so one client cannot starve the
 *    fleet;
 *  - with Options::cacheDir set, prepared state spills to disk
 *    (common/serial.hh streams framed by an FNV-1a digest) and whole
 *    memoized responses persist as JSON, so a restarted daemon serves
 *    warm hits immediately and an exact repeat request returns the
 *    recorded response without re-executing;
 *  - progress streams back through the campaign's ordered-commit
 *    reporting, so a served campaign emits the same (done, total)
 *    sequence a local run would.
 *
 * Determinism contract: a served campaign's telemetry artifacts are
 * byte-identical to a local `dfi-campaign` run of the same config —
 * warm or cold, concurrent or serial.  The prepared-state caches
 * only ever short-circuit the golden pass, never the faulty runs,
 * and checkpoint reuse is already proven byte-exact by the
 * golden-diff CI legs; the response memo goes one step further and
 * replays the recorded bytes of a previous execution verbatim (it is
 * skipped when telemetry timing is on, since wall-clock fields are
 * not reproducible).  `scripts/check_service.sh` asserts exactly
 * this against `results/golden/`.
 *
 * The wire protocol (tools/dfi_serve.cc) is newline-delimited JSON
 * over a Unix-domain socket; the encode/decode halves live here so
 * they are unit-testable without sockets.  See DESIGN.md §11.
 */

#ifndef DFI_INJECT_SERVICE_HH
#define DFI_INJECT_SERVICE_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/json.hh"
#include "inject/campaign.hh"
#include "inject/parser.hh"

namespace dfi::inject
{

/** Protocol object tags (the "kind" member of every line). */
inline constexpr const char *kServiceRequestKind = "dfi-request";
inline constexpr const char *kServiceResponseKind = "dfi-response";
inline constexpr const char *kServiceProgressKind = "dfi-progress";

/** One client request: an operation plus (for campaigns) a config. */
struct ServiceRequest
{
    /** "campaign" | "ping" | "stats" | "shutdown". */
    std::string op = "campaign";

    /** Client identity for the per-client in-flight quota. */
    std::string client = "anon";

    CampaignConfig config;
};

/**
 * Decode a request line.  Strict: unknown operations, unknown config
 * keys, and type mismatches are errors (a service must not guess at
 * traffic it does not understand).  Config keys mirror the telemetry
 * config echo plus the execution knobs a remote client may set
 * (jobs, prune, checkpoint shape); telemetry paths, shard, and
 * resume are deliberately not part of the protocol — artifacts
 * travel back in the response and land wherever the *client* says.
 */
bool decodeServiceRequest(const json::Value &line, ServiceRequest &out,
                          std::string &error);

/** Encode a request line (the client half). */
json::Value encodeServiceRequest(const ServiceRequest &request);

/** A progress event line. */
json::Value encodeServiceProgress(std::uint64_t done,
                                  std::uint64_t total);

/** The terminal response to one request. */
struct ServiceResponse
{
    bool ok = false;
    std::string op = "campaign";
    std::string error; //!< set when !ok

    /**
     * On !ok: true when the failure is backpressure (draining, queue
     * full, client quota) that a client may retry later, false for
     * hard errors (bad config, engine failure) that a retry would
     * only repeat.
     */
    bool retryable = false;

    // Campaign responses only:
    std::string cacheKey;  //!< CampaignConfig::cacheKey()
    bool cacheHit = false; //!< prepare() was skipped

    /**
     * Where the warm artifacts came from: "none" (cold prepare),
     * "memory" (LRU), "flight" (joined a racing request's prepare),
     * "disk" (restart-persistent spill), or "response" (the whole
     * memoized response was served without executing).
     */
    std::string cacheSource = "none";
    std::uint64_t runsTotal = 0;
    ClassCounts counts;
    double vulnerability = 0.0;
    std::string telemetryRuns;    //!< full runs JSONL artifact
    std::string telemetrySummary; //!< full summary JSON artifact

    /** Extra payload for ping/stats responses (object or null). */
    json::Value extra;
};

json::Value encodeServiceResponse(const ServiceResponse &response);

/** Decode a response line (the client half). */
bool decodeServiceResponse(const json::Value &line,
                           ServiceResponse &out, std::string &error);

/** The long-running service: cache + queue around the engine. */
class CampaignService
{
  public:
    struct Options
    {
        /**
         * LRU byte budget for cached preparations (0 disables
         * caching entirely — every request prepares cold).
         */
        std::uint64_t cacheBudgetBytes = 1024ull << 20;

        /** Admitted (queued + running) requests per client. */
        std::uint32_t perClientInFlight = 2;

        /** Admitted requests across all clients. */
        std::uint32_t queueCapacity = 64;

        /**
         * Campaigns executing simultaneously through executeQueued
         * (each may still use `jobs` threads internally).  0 is
         * treated as 1.
         */
        std::uint32_t workers = 1;

        /**
         * Directory for the restart-persistent disk cache (prepared
         * state spills + memoized responses).  Empty disables disk
         * persistence.
         */
        std::string cacheDir;

        /**
         * Graceful degradation: after this many *consecutive*
         * disk-cache I/O failures the disk tier disables itself for
         * the rest of the process (counted in stats; the memory
         * tier keeps serving).  A miss — absent or invalid file —
         * is not a failure.  0 never disables.
         */
        std::uint32_t diskFailureLimit = 3;
    };

    struct CacheStats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::uint64_t entries = 0;
        std::uint64_t bytes = 0;

        /** Hits that joined another request's in-flight prepare. */
        std::uint64_t coalesced = 0;

        std::uint64_t diskHits = 0;
        std::uint64_t diskStores = 0;
        std::uint64_t responseHits = 0;
        std::uint64_t responseStores = 0;

        /** Disk-cache I/O failures (reads and stores, total). */
        std::uint64_t diskErrors = 0;

        /** True once the disk tier degraded itself off. */
        bool diskDisabled = false;
    };

    using Progress =
        std::function<void(std::uint64_t done, std::uint64_t total)>;

    explicit CampaignService(Options options);

    /**
     * Execute one campaign request synchronously on the calling
     * thread (no queue, no quota).  Never throws: engine fatal()s
     * come back as !ok responses.
     */
    ServiceResponse execute(const ServiceRequest &request,
                            const Progress &progress = {});

    /**
     * Queued execution: admit (enforcing the per-client quota and
     * the global capacity — both rejected immediately with a
     * retryable !ok response, not blocked), wait for a worker slot
     * in FIFO order, then execute.  Up to Options::workers campaigns
     * run simultaneously; each may still use `jobs` worker threads
     * internally.
     */
    ServiceResponse executeQueued(const ServiceRequest &request,
                                  const Progress &progress = {});

    /**
     * Stop admitting queued requests and block until every admitted
     * one has finished (SIGTERM drain).  Idempotent.
     */
    void drain();

    CacheStats cacheStats() const;

    /** Cache + queue counters as a JSON object (the stats op). */
    json::Value statsJson() const;

  private:
    struct CacheEntry
    {
        std::string key;
        std::shared_ptr<const PreparedCampaign> prep;
        std::uint64_t bytes = 0;
    };

    /**
     * One in-flight prepare() shared by every racing request for the
     * same cache key.  The leader fills prep or error and flips done;
     * followers block on cv.
     */
    struct PrepFlight
    {
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        std::shared_ptr<const PreparedCampaign> prep;
        std::string error;
    };

    /** Look up + front-move; nullptr on miss.  Caller holds mu_. */
    std::shared_ptr<const PreparedCampaign>
    lockedLruFind(const std::string &key);

    /** Insert and evict LRU entries beyond the byte budget. */
    void cacheInsert(const std::string &key,
                     std::shared_ptr<const PreparedCampaign> prep);

    /**
     * Resolve a flight (success or error) and wake its followers.
     * The flights_ entry is erased only here, after the caller has
     * already published the artifacts to the LRU, so there is never
     * a moment where neither the flight nor the cache holds the key.
     */
    void publishFlight(const std::string &key, PrepFlight &flight,
                       std::shared_ptr<const PreparedCampaign> prep,
                       const std::string &error);

    /** The response-memo key: cacheKey() refined by run-set knobs. */
    static std::string responseKey(const std::string &cacheKey,
                                   bool prune);

    std::string prepPath(const std::string &key) const;
    std::string responsePath(const std::string &key) const;

    /**
     * Outcome of a disk-cache lookup.  A Miss (absent, truncated, or
     * digest-failed file) is the cold-fallback contract working as
     * designed; an IoError is the storage itself failing and feeds
     * the degradation counter.
     */
    enum class DiskRead
    {
        Hit,
        Miss,
        IoError,
    };

    std::shared_ptr<const PreparedCampaign>
    loadPreparedFromDisk(const CampaignConfig &cfg,
                         const std::string &key,
                         bool &io_error) const;
    bool storePreparedToDisk(const std::string &key,
                             const PreparedCampaign &prep) const;
    DiskRead loadResponseFromDisk(const std::string &key, bool prune,
                                  ServiceResponse &out) const;
    bool storeResponseToDisk(const std::string &key, bool prune,
                             const ServiceResponse &response) const;

    /** True while the disk tier is configured and not degraded. */
    bool diskEnabled() const;

    /**
     * Feed the degradation policy one disk outcome: success resets
     * the consecutive-failure streak, failure advances it and trips
     * diskDisabled_ at Options::diskFailureLimit.
     */
    void noteDiskOutcome(bool ok);

    Options opts_;

    mutable std::mutex mu_;
    std::condition_variable cv_;

    // Warm artifact cache, most-recently-used first.
    std::list<CacheEntry> lru_;
    std::uint64_t cacheBytes_ = 0;
    CacheStats stats_;

    // In-flight preparations by cache key (single-flight dedup).
    std::map<std::string, std::shared_ptr<PrepFlight>> flights_;

    // FIFO admission queue: waiting_ holds tickets in issue order;
    // the front ticket starts as soon as a worker slot frees up.
    // active_ counts admitted-but-unfinished requests, running_ the
    // ones holding a worker slot.
    std::uint64_t nextTicket_ = 0;
    std::deque<std::uint64_t> waiting_;
    std::uint32_t running_ = 0;
    std::uint32_t active_ = 0;
    std::map<std::string, std::uint32_t> inFlight_;
    bool draining_ = false;

    // Disk-tier degradation state (guarded by mu_).
    std::uint32_t diskFailStreak_ = 0;
    bool diskDisabled_ = false;
};

} // namespace dfi::inject

#endif // DFI_INJECT_SERVICE_HH

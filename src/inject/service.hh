/**
 * @file
 * Persistent campaign service with a content-addressed warm artifact
 * cache (the scale-out layer above the campaign engine).
 *
 * Every `dfi-campaign` invocation re-simulates the golden run and
 * rebuilds the checkpoint store from scratch, even though those
 * artifacts are a pure function of (program, core model, checkpoint
 * knobs) and PR 3 made them COW-backed shared state.  The
 * CampaignService amortizes that cost across requests the way a
 * simulator fleet amortizes it across users:
 *
 *  - requests are content-addressed by CampaignConfig::cacheKey();
 *    a repeat key adopts the cached PreparedCampaign (golden run +
 *    checkpoints) and skips prepare() entirely — the request goes
 *    straight to plan/execute;
 *  - cached preparations live in an LRU keyed by a byte budget
 *    (Options::cacheBudgetBytes), charged at
 *    PreparedCampaign::approxBytes(); cold entries evict first;
 *  - queued execution is FIFO with a per-client in-flight quota and
 *    a global admission capacity, so one client cannot starve the
 *    fleet;
 *  - progress streams back through the campaign's ordered-commit
 *    reporting, so a served campaign emits the same (done, total)
 *    sequence a local run would.
 *
 * Determinism contract: a served campaign's telemetry artifacts are
 * byte-identical to a local `dfi-campaign` run of the same config —
 * warm or cold.  The cache only ever short-circuits the golden pass,
 * never the faulty runs, and checkpoint reuse is already proven
 * byte-exact by the golden-diff CI legs.  `scripts/check_service.sh`
 * asserts exactly this against `results/golden/`.
 *
 * The wire protocol (tools/dfi_serve.cc) is newline-delimited JSON
 * over a Unix-domain socket; the encode/decode halves live here so
 * they are unit-testable without sockets.  See DESIGN.md §11.
 */

#ifndef DFI_INJECT_SERVICE_HH
#define DFI_INJECT_SERVICE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/json.hh"
#include "inject/campaign.hh"
#include "inject/parser.hh"

namespace dfi::inject
{

/** Protocol object tags (the "kind" member of every line). */
inline constexpr const char *kServiceRequestKind = "dfi-request";
inline constexpr const char *kServiceResponseKind = "dfi-response";
inline constexpr const char *kServiceProgressKind = "dfi-progress";

/** One client request: an operation plus (for campaigns) a config. */
struct ServiceRequest
{
    /** "campaign" | "ping" | "stats" | "shutdown". */
    std::string op = "campaign";

    /** Client identity for the per-client in-flight quota. */
    std::string client = "anon";

    CampaignConfig config;
};

/**
 * Decode a request line.  Strict: unknown operations, unknown config
 * keys, and type mismatches are errors (a service must not guess at
 * traffic it does not understand).  Config keys mirror the telemetry
 * config echo plus the execution knobs a remote client may set
 * (jobs, prune, checkpoint shape); telemetry paths, shard, and
 * resume are deliberately not part of the protocol — artifacts
 * travel back in the response and land wherever the *client* says.
 */
bool decodeServiceRequest(const json::Value &line, ServiceRequest &out,
                          std::string &error);

/** Encode a request line (the client half). */
json::Value encodeServiceRequest(const ServiceRequest &request);

/** A progress event line. */
json::Value encodeServiceProgress(std::uint64_t done,
                                  std::uint64_t total);

/** The terminal response to one request. */
struct ServiceResponse
{
    bool ok = false;
    std::string op = "campaign";
    std::string error; //!< set when !ok

    // Campaign responses only:
    std::string cacheKey;  //!< CampaignConfig::cacheKey()
    bool cacheHit = false; //!< prepare() was skipped
    std::uint64_t runsTotal = 0;
    ClassCounts counts;
    double vulnerability = 0.0;
    std::string telemetryRuns;    //!< full runs JSONL artifact
    std::string telemetrySummary; //!< full summary JSON artifact

    /** Extra payload for ping/stats responses (object or null). */
    json::Value extra;
};

json::Value encodeServiceResponse(const ServiceResponse &response);

/** Decode a response line (the client half). */
bool decodeServiceResponse(const json::Value &line,
                           ServiceResponse &out, std::string &error);

/** The long-running service: cache + queue around the engine. */
class CampaignService
{
  public:
    struct Options
    {
        /**
         * LRU byte budget for cached preparations (0 disables
         * caching entirely — every request prepares cold).
         */
        std::uint64_t cacheBudgetBytes = 1024ull << 20;

        /** Admitted (queued + running) requests per client. */
        std::uint32_t perClientInFlight = 2;

        /** Admitted requests across all clients. */
        std::uint32_t queueCapacity = 64;
    };

    struct CacheStats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::uint64_t entries = 0;
        std::uint64_t bytes = 0;
    };

    using Progress =
        std::function<void(std::uint64_t done, std::uint64_t total)>;

    explicit CampaignService(Options options);

    /**
     * Execute one campaign request synchronously on the calling
     * thread (no queue, no quota).  Never throws: engine fatal()s
     * come back as !ok responses.
     */
    ServiceResponse execute(const ServiceRequest &request,
                            const Progress &progress = {});

    /**
     * Queued execution: admit (enforcing the per-client quota and
     * the global capacity — both rejected immediately, not blocked),
     * wait for FIFO turn, then execute.  Campaigns therefore run one
     * at a time in arrival order; each may still use `jobs` worker
     * threads internally.
     */
    ServiceResponse executeQueued(const ServiceRequest &request,
                                  const Progress &progress = {});

    /**
     * Stop admitting queued requests and block until every admitted
     * one has finished (SIGTERM drain).  Idempotent.
     */
    void drain();

    CacheStats cacheStats() const;

    /** Cache + queue counters as a JSON object (the stats op). */
    json::Value statsJson() const;

  private:
    struct CacheEntry
    {
        std::string key;
        std::shared_ptr<const PreparedCampaign> prep;
        std::uint64_t bytes = 0;
    };

    /** Look up + front-move; nullptr on miss.  Counts hit/miss. */
    std::shared_ptr<const PreparedCampaign>
    cacheLookup(const std::string &key);

    /** Insert and evict LRU entries beyond the byte budget. */
    void cacheInsert(const std::string &key,
                     std::shared_ptr<const PreparedCampaign> prep);

    Options opts_;

    mutable std::mutex mu_;
    std::condition_variable cv_;

    // Warm artifact cache, most-recently-used first.
    std::list<CacheEntry> lru_;
    std::uint64_t cacheBytes_ = 0;
    CacheStats stats_;

    // FIFO admission queue: tickets are served strictly in issue
    // order; active_ counts admitted-but-unfinished requests.
    std::uint64_t nextTicket_ = 0;
    std::uint64_t serving_ = 0;
    std::uint32_t active_ = 0;
    std::map<std::string, std::uint32_t> inFlight_;
    bool draining_ = false;
};

} // namespace dfi::inject

#endif // DFI_INJECT_SERVICE_HH

#include "inject/campaign.hh"

#include <algorithm>
#include <chrono>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.hh"
#include "common/logging.hh"
#include "common/serial.hh"
#include "inject/executor.hh"
#include "inject/plan.hh"
#include "inject/reporting.hh"
#include "inject/target.hh"
#include "inject/telemetry.hh"
#include "isa/codegen.hh"
#include "prog/benchmark.hh"
#include "uarch/core_config.hh"

namespace dfi::inject
{

using dfi::FaultMask;
using dfi::FaultType;

namespace
{

/** Hard upper bound on any single simulated run. */
constexpr std::uint64_t kAbsoluteCycleCap = 200'000'000;

bool
knownName(const std::vector<std::string> &names,
          const std::string &name)
{
    return std::find(names.begin(), names.end(), name) != names.end();
}

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string joined;
    for (const std::string &name : names) {
        if (!joined.empty())
            joined += ", ";
        joined += name;
    }
    return joined;
}

} // namespace

std::vector<ConfigError>
CampaignConfig::validate() const
{
    std::vector<ConfigError> errors;
    auto bad = [&errors](std::string field, std::string message) {
        errors.push_back(
            ConfigError{std::move(field), std::move(message)});
    };

    if (!knownName(componentNames(), component))
        bad("component", "unknown component '" + component +
                             "' (known: " +
                             joinNames(componentNames()) + ")");
    if (benchmark != "micro" &&
        !knownName(prog::benchmarkNames(), benchmark))
        bad("benchmark",
            "unknown benchmark '" + benchmark + "' (known: " +
                joinNames(prog::benchmarkNames()) + ", micro)");
    if (scale == 0)
        bad("scale", "must be >= 1");
    if (!knownName(uarch::coreConfigNames(), coreName))
        bad("core", "unknown core '" + coreName + "' (known: " +
                        joinNames(uarch::coreConfigNames()) + ")");
    if (confidence <= 0.0 || confidence >= 1.0)
        bad("confidence", "must be in (0, 1)");
    if (margin <= 0.0 || margin >= 1.0)
        bad("margin", "must be in (0, 1)");
    if (exhaustive && numInjections != 0)
        bad("injections",
            "--exhaustive enumerates the whole fault space; drop "
            "--injections");
    if (exhaustive && (faultType != dfi::FaultType::Transient ||
                       population != Population::SingleBit))
        bad("exhaustive",
            "exhaustive campaigns enumerate single-bit transients "
            "only");
    if (intermittentMin > intermittentMax)
        bad("intermittent_min",
            "must not exceed intermittent_max (" +
                std::to_string(intermittentMin) + " > " +
                std::to_string(intermittentMax) + ")");
    if (faultType == dfi::FaultType::Intermittent &&
        intermittentMin == 0)
        bad("intermittent_min",
            "must be >= 1 for intermittent faults");
    if (cacheScale <= 0.0 || cacheScale > 1.0)
        bad("cache_scale", "must be in (0, 1]");
    if (timeoutFactor < 1.0)
        bad("timeout_factor", "must be >= 1");
    if (useCheckpoints && checkpointCount == 0)
        bad("checkpoints", "checkpoint count must be >= 1 when "
                           "checkpointing is enabled");
    if (shard.count == 0)
        bad("shard", "shard count must be >= 1");
    else if (shard.index >= shard.count)
        bad("shard", "shard index " + std::to_string(shard.index) +
                         " out of range for count " +
                         std::to_string(shard.count));
    if (!resumeFrom.empty() && telemetryOut.empty())
        bad("resume",
            "resuming requires a telemetry output path to append "
            "the finished campaign to");
    return errors;
}

std::string
CampaignConfig::cacheKey() const
{
    // The deterministic identity of a campaign is exactly its
    // telemetry config echo (every outcome-relevant field, no
    // execution-strategy knobs).  The checkpoint knobs are appended
    // because the cached artifact includes the CheckpointStore,
    // whose capture schedule they shape.  A format tag leads so a
    // future key-derivation change re-keys every entry cleanly.
    hash::Fnv1a hasher;
    hasher.update(std::string_view("dfi-cache-key-v1"));
    hasher.update(telemetryConfigEcho(*this).dump());
    hasher.update(static_cast<std::uint64_t>(useCheckpoints ? 1 : 0));
    hasher.update(static_cast<std::uint64_t>(checkpointCount));
    hasher.update(checkpointMemBudgetMB);
    return hasher.hexDigest();
}

std::uint64_t
PreparedCampaign::approxBytes() const
{
    std::uint64_t bytes = sizeof(PreparedCampaign);
    bytes += image.code.size() + image.data.size();
    bytes += expectedOutput.size() + golden.output.size();
    bytes += checkpoints.count() * checkpoints.snapshotBoundBytes();
    return bytes;
}

void
savePreparedCampaign(const PreparedCampaign &prep, serial::Writer &writer)
{
    // Writer archives never mutate (common/serial.hh); the const_cast
    // only satisfies the shared save/load serializeState signature.
    auto &mutable_prep = const_cast<PreparedCampaign &>(prep);
    serial::value(writer, mutable_prep.image);
    serial::value(writer, mutable_prep.expectedOutput);
    serial::value(writer, mutable_prep.golden);
    prep.checkpoints.saveState(writer);
}

std::shared_ptr<const PreparedCampaign>
loadPreparedCampaign(const CampaignConfig &cfg, serial::Reader &reader,
                     std::string &error)
{
    if (cfg.configTweak) {
        error = "prepared-state streams cannot carry a configTweak";
        return nullptr;
    }
    uarch::CoreConfig core_cfg = uarch::coreConfigByName(cfg.coreName);
    uarch::scaleCaches(core_cfg, cfg.cacheScale);

    auto prep = std::make_shared<PreparedCampaign>();
    serial::value(reader, prep->image);
    serial::value(reader, prep->expectedOutput);
    serial::value(reader, prep->golden);
    if (!reader.ok()) {
        error = reader.error();
        return nullptr;
    }
    if (prep->image.isa != core_cfg.isa) {
        error = "prepared-state stream targets a different ISA";
        return nullptr;
    }
    prep->checkpoints.loadState(reader, core_cfg, prep->image);
    if (!reader.ok()) {
        error = reader.error();
        return nullptr;
    }
    return prep;
}

InjectionCampaign::InjectionCampaign(CampaignConfig config)
    : cfg_(std::move(config))
{
}

InjectionCampaign::~InjectionCampaign() = default;

void
InjectionCampaign::prepare()
{
    if (prep_ != nullptr)
        return;

    const std::vector<ConfigError> errors = cfg_.validate();
    if (!errors.empty())
        fatal("invalid campaign config: %s: %s", errors[0].field,
              errors[0].message);

    auto prep = std::make_shared<PreparedCampaign>();
    uarch::CoreConfig core_cfg =
        uarch::coreConfigByName(cfg_.coreName);
    uarch::scaleCaches(core_cfg, cfg_.cacheScale);
    if (cfg_.configTweak)
        cfg_.configTweak(core_cfg);
    const prog::Benchmark bench =
        prog::buildBenchmark(cfg_.benchmark, cfg_.scale);
    prep->expectedOutput = bench.expectedOutput;
    prep->image = ir::compileModule(bench.module, core_cfg.isa,
                                    0x200000);

    // Single full-program pass: the golden reference and the restore
    // checkpoints are captured together.  Snapshots are COW-backed
    // core copies, so each capture copies page tables, not pages.
    CheckpointPolicy checkpoint_policy;
    checkpoint_policy.enabled = cfg_.useCheckpoints;
    checkpoint_policy.targetCount = cfg_.checkpointCount;
    checkpoint_policy.budgetBytes =
        cfg_.checkpointMemBudgetMB * 1024 * 1024;
    prep->checkpoints = CheckpointStore(checkpoint_policy);

    uarch::OooCore core(core_cfg, prep->image);
    prep->checkpoints.captureBase(core);
    while (core.tick()) {
        if (core.cycle() > kAbsoluteCycleCap)
            fatal("golden run of '%s' on '%s' exceeded the cycle cap",
                  cfg_.benchmark, cfg_.coreName);
        prep->checkpoints.observe(core);
    }
    prep->golden = core.record();
    if (prep->golden.term != syskit::Termination::Exited)
        fatal("golden run of '%s' on '%s' did not exit cleanly: %s",
              cfg_.benchmark, cfg_.coreName, prep->golden.detail);
    if (prep->golden.output != prep->expectedOutput)
        fatal("golden run of '%s' on '%s' produced wrong output",
              cfg_.benchmark, cfg_.coreName);
    prep_ = std::move(prep);
}

const syskit::RunRecord &
InjectionCampaign::golden()
{
    prepare();
    return prep_->golden;
}

std::shared_ptr<const PreparedCampaign>
InjectionCampaign::prepared()
{
    prepare();
    return prep_;
}

void
InjectionCampaign::adoptPrepared(
    std::shared_ptr<const PreparedCampaign> prep)
{
    if (prep_ != nullptr)
        panic("adoptPrepared after prepare(): adopt before first "
              "use");
    if (prep == nullptr)
        panic("adoptPrepared: null preparation");

    // Adoption skips the golden pass but never validation: a config
    // the campaign would refuse cold must be refused warm too.
    const std::vector<ConfigError> errors = cfg_.validate();
    if (!errors.empty())
        fatal("invalid campaign config: %s: %s", errors[0].field,
              errors[0].message);
    prep_ = std::move(prep);
}

syskit::RunRecord
InjectionCampaign::runOne(const std::vector<FaultMask> &masks,
                          std::uint64_t *simulated_cycles)
{
    prepare();
    if (masks.empty())
        fatal("runOne: empty mask group");

    RunTask task;
    task.masks = masks;
    task.firstCycle = ~0ull;
    for (const FaultMask &mask : masks)
        task.firstCycle = std::min(task.firstCycle, mask.cycle);

    const TaskResult result = runTask(task);
    if (simulated_cycles != nullptr)
        *simulated_cycles = result.simulatedCycles;
    return result.record;
}

TaskResult
InjectionCampaign::runTask(const RunTask &task) const
{
    if (prep_ == nullptr)
        panic("runTask before prepare(): run golden() first");
    const std::vector<FaultMask> &masks = task.masks;
    if (masks.empty())
        fatal("runTask: empty mask group");
    const std::uint64_t first_cycle = task.firstCycle;

    // Dispatch: copy the nearest read-only checkpoint before the
    // injection into this worker's private core.  The copy shares
    // the snapshot's COW pages, so its cost tracks the state the run
    // goes on to touch, not the core size.
    const auto restore_started = std::chrono::steady_clock::now();
    uarch::OooCore core = prep_->checkpoints.sourceFor(first_cycle);
    const std::uint64_t restore_micros = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - restore_started)
            .count());
    const std::uint64_t restored_cycle = core.cycle();

    dfi::FaultDomain domain;
    domain.setResolver([&core](dfi::StructureId id) {
        return core.arrayFor(id);
    });
    for (const FaultMask &mask : masks)
        domain.arm(mask);

    const bool single_transient =
        masks.size() == 1 && masks[0].type == FaultType::Transient;
    const std::uint64_t limit = std::min<std::uint64_t>(
        kAbsoluteCycleCap,
        static_cast<std::uint64_t>(
            static_cast<double>(prep_->golden.cycles) * cfg_.timeoutFactor));

    bool injected = false;
    bool watch_armed = false;
    bool early_masked = false;
    std::string early_reason;
    dfi::FaultableArray *watch_array = nullptr;

    // Arm the overwrite watch the moment the flip lands.
    auto arm_watch_if_injected = [&]() {
        if (single_transient && !injected &&
            domain.allTransientsApplied()) {
            injected = true;
            if (cfg_.earlyStopOverwrite) {
                watch_array = core.arrayFor(masks[0].structure);
                watch_array->armWatch(masks[0].entry, masks[0].bit);
                watch_armed = true;
            }
        }
    };

    // A transient due at the restored cycle (only cycle 0 qualifies:
    // later injections restore a strictly-earlier snapshot) is
    // applied by the pre-loop tick below, so both early-stop rules
    // must run for it here, before the loop.
    if (single_transient && cfg_.earlyStopInvalidEntry &&
        masks[0].cycle <= core.cycle() &&
        !core.entryLive(masks[0].structure, masks[0].entry)) {
        early_masked = true;
        early_reason = "invalid-entry";
    }

    if (!early_masked) {
        // Permanent/intermittent faults (and cycle-0 transients)
        // active from cycle 0.
        domain.tick(core.cycle());
        arm_watch_if_injected();
    }

    while (!early_masked && !core.finished()) {
        const std::uint64_t next_cycle = core.cycle() + 1;

        // Early-stop rule (i): the fault lands in an invalid entry.
        if (single_transient && !injected &&
            next_cycle >= masks[0].cycle) {
            if (cfg_.earlyStopInvalidEntry &&
                !core.entryLive(masks[0].structure, masks[0].entry)) {
                early_masked = true;
                early_reason = "invalid-entry";
                break;
            }
        }

        domain.tick(next_cycle);
        arm_watch_if_injected();

        if (!core.tick())
            break;

        // Early-stop rule (ii): overwritten before ever read.
        if (watch_armed) {
            const dfi::WatchState state = watch_array->watchState();
            if (state == dfi::WatchState::WrittenFirst) {
                early_masked = true;
                early_reason = "overwritten-before-read";
                break;
            }
            if (state == dfi::WatchState::ReadFirst) {
                watch_array->clearWatch();
                watch_armed = false;
            }
        }

        if (core.cycle() >= limit) {
            core.forceTimeout();
            break;
        }
    }

    if (watch_armed && watch_array != nullptr)
        watch_array->clearWatch();

    TaskResult result;
    if (early_masked) {
        result.record.earlyStopMasked = true;
        result.record.earlyStopReason = early_reason;
        result.record.cycles = core.cycle();
        result.record.instructions = core.committedInstructions();
    } else {
        if (!core.finished())
            core.forceTimeout();
        result.record = core.record();
    }
    result.simulatedCycles = core.cycle() - restored_cycle;
    result.restoreMicros = restore_micros;
    return result;
}

InjectionCampaign::PlanSummary
InjectionCampaign::planSummary()
{
    prepare();

    uarch::CoreConfig core_cfg = uarch::coreConfigByName(cfg_.coreName);
    uarch::scaleCaches(core_cfg, cfg_.cacheScale);
    if (cfg_.configTweak)
        cfg_.configTweak(core_cfg);
    uarch::OooCore probe(core_cfg, prep_->image);
    CampaignPlan plan = planCampaign(cfg_, prep_->golden, probe);

    PlanSummary summary;
    summary.totalRuns = plan.totalRuns();
    summary.stats = plan.pruneStats();
    summary.maskCount = plan.masks().size();
    if (cfg_.shard.count > 1)
        plan = plan.shardView(cfg_.shard);
    summary.executed = plan.numRuns();
    for (const RunTask &task : plan.tasks()) {
        summary.estimatedSimulatedCycles +=
            prep_->golden.cycles >= task.firstCycle
                ? prep_->golden.cycles - task.firstCycle + 1
                : 1;
    }
    return summary;
}

CampaignResult
InjectionCampaign::run(const Progress &progress)
{
    prepare();

    // Plan: resolve sampling size and the mask repository, then run
    // the classification pipeline (the probe core supplies the
    // structure geometries and, when pruning is on, is ticked through
    // one instrumented golden re-run).
    uarch::CoreConfig core_cfg = uarch::coreConfigByName(cfg_.coreName);
    uarch::scaleCaches(core_cfg, cfg_.cacheScale);
    if (cfg_.configTweak)
        cfg_.configTweak(core_cfg);
    uarch::OooCore probe(core_cfg, prep_->image);
    CampaignPlan plan = planCampaign(cfg_, prep_->golden, probe);
    const std::uint64_t total_runs = plan.totalRuns();

    // Shard first, then subtract resumed runs: `--resume` within a
    // shard continues that shard, and a resume stream naming runs
    // outside this shard view is rejected by withoutRuns().
    if (cfg_.shard.count > 1)
        plan = plan.shardView(cfg_.shard);

    // Resume: load the partial stream up front (fully buffered, so
    // streaming the new artifact over the same path is safe), prove
    // it belongs to this exact campaign by byte-comparing its header
    // against the one we are about to write, and drop its runs from
    // the plan.
    std::vector<TelemetryRecord> resumed;
    if (!cfg_.resumeFrom.empty()) {
        TelemetryFile partial;
        std::string error;
        if (!readTelemetryFile(cfg_.resumeFrom, partial, error))
            fatal("resume: %s", error);
        if (partial.kind != kTelemetryRunsKind)
            fatal("resume: '%s' is not a telemetry run stream",
                  cfg_.resumeFrom);
        if (!partial.warning.empty())
            warn("resume: %s: %s", cfg_.resumeFrom, partial.warning);
        const std::string expected =
            telemetryRunsHeader(cfg_, prep_->golden, total_runs,
                                plan.pruneStats())
                .dump();
        if (partial.header.dump() != expected)
            fatal("resume: '%s' came from a different campaign "
                  "(header mismatch; check config and seed)",
                  cfg_.resumeFrom);
        resumed = std::move(partial.records);
        std::unordered_set<std::uint64_t> completed;
        for (const TelemetryRecord &record : resumed)
            completed.insert(record.runId);
        plan = plan.withoutRuns(completed);
    }

    // Execute: serial or thread pool per cfg_.jobs; either way the
    // results come back in runId order.
    CampaignReporter reporter(progress, plan.numRuns());
    const std::unique_ptr<Executor> executor =
        makeExecutor({cfg_.jobs});

    // Telemetry attaches at the reporter's ordered-commit point, so
    // the stream is identical for every executor and job count.  It
    // streams to disk line-by-line: a killed campaign leaves a
    // resumable partial instead of nothing.
    std::unique_ptr<TelemetryWriter> telemetry;
    if (!cfg_.telemetryOut.empty() || cfg_.telemetryCapture) {
        telemetry = std::make_unique<TelemetryWriter>(
            cfg_, prep_->golden, total_runs, executor->jobs(),
            plan.pruneStats(), TelemetryOptions{cfg_.telemetryTiming});
        // Capture-only telemetry (the campaign service) stays in
        // memory; a path additionally streams every line to disk.
        if (!cfg_.telemetryOut.empty())
            telemetry->streamTo(cfg_.telemetryOut);
        // Pruned runs of this plan view interleave into the stream at
        // their runId positions; already-resumed pruned runs were
        // dropped from the view by withoutRuns() above.
        telemetry->setPruned(plan.pruned());
        // Completed runs from the resume stream re-enter the new
        // artifact verbatim, ahead of everything this process runs
        // (resumed runIds always precede the remainder: the partial
        // stream was itself written in ascending-runId order).
        for (const TelemetryRecord &record : resumed)
            telemetry->replay(record);
        reporter.setCommitSink(
            [&telemetry](const RunTask &task,
                         const TaskResult &task_result) {
                telemetry->commit(task, task_result);
            });
    }

    std::vector<TaskResult> task_results = executor->run(
        plan,
        [this](const RunTask &task) {
            const auto started = std::chrono::steady_clock::now();
            TaskResult task_result = runTask(task);
            task_result.wallMicros = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - started)
                    .count());
            return task_result;
        },
        reporter);

    if (telemetry != nullptr && !cfg_.telemetryOut.empty())
        telemetry->writeFiles(cfg_.telemetryOut);

    // Report: fold the ordered results into the campaign record.
    CampaignResult result;
    result.config = cfg_;
    if (telemetry != nullptr) {
        // Pruned runs above the last committed runId are still
        // queued; a capture-only writer (no writeFiles) must flush
        // them or the in-memory artifacts drop the trailing records.
        telemetry->finalize();
        result.telemetryRuns = telemetry->runsJsonl();
        result.telemetrySummary = telemetry->summaryJson();
    }
    result.golden = prep_->golden;
    result.masks = plan.masks();
    result.pruneStats = plan.pruneStats();
    result.records.reserve(task_results.size());
    result.recordRunIds.reserve(task_results.size());
    result.aggregateStats = reporter.aggregateStats();
    const std::vector<RunTask> &tasks = plan.tasks();
    if (task_results.size() != tasks.size())
        panic("campaign: %s results for %s planned tasks",
              task_results.size(), tasks.size());
    for (std::size_t i = 0; i < task_results.size(); ++i) {
        TaskResult &task_result = task_results[i];
        result.simulatedFaultyCycles += task_result.simulatedCycles;
        result.totalWallMicros += task_result.wallMicros;
        result.totalRestoreMicros += task_result.restoreMicros;
        // Without checkpoints and early stops the run would have
        // simulated from reset to wherever it ended (or to the end of
        // the program for masked runs).
        const syskit::RunRecord &rec = task_result.record;
        result.fullRunEquivalentCycles +=
            rec.earlyStopMasked ? prep_->golden.cycles
                                : std::max(rec.cycles, prep_->golden.cycles);
        result.recordRunIds.push_back(tasks[i].runId);
        result.records.push_back(std::move(task_result.record));
    }

    // Fold the pruned runs of this view in with their precomputed
    // outcomes, so result.classify() tallies the whole view exactly
    // as an unpruned campaign would.
    std::unordered_map<std::uint64_t, const syskit::RunRecord *>
        executed;
    for (std::size_t i = 0; i < result.records.size(); ++i)
        executed.emplace(result.recordRunIds[i], &result.records[i]);
    std::unordered_map<std::uint64_t, const TelemetryRecord *>
        resumed_by_id;
    for (const TelemetryRecord &record : resumed)
        resumed_by_id.emplace(record.runId, &record);

    result.pruned.reserve(plan.pruned().size());
    for (const PrunedRun &pruned : plan.pruned()) {
        PrunedRunOutcome outcome;
        outcome.runId = pruned.runId;
        outcome.verdict = pruned.verdict;
        outcome.repRunId = pruned.repRunId;
        outcome.pruneClass = pruned.pruneClass;
        switch (pruned.verdict) {
          case SiteVerdict::InvalidEntry:
          case SiteVerdict::DeadOverwrite:
            outcome.record.earlyStopMasked = true;
            outcome.record.earlyStopReason =
                pruned.verdict == SiteVerdict::InvalidEntry
                    ? "invalid-entry"
                    : "overwritten-before-read";
            outcome.record.cycles = pruned.cycles;
            outcome.record.instructions = pruned.instructions;
            outcome.haveRecord = true;
            result.fullRunEquivalentCycles += prep_->golden.cycles;
            break;
          case SiteVerdict::GoldenRun:
            outcome.record = prep_->golden;
            outcome.haveRecord = true;
            result.fullRunEquivalentCycles += prep_->golden.cycles;
            break;
          case SiteVerdict::EquivMember: {
            const auto exec = executed.find(pruned.repRunId);
            if (exec != executed.end()) {
                outcome.record = *exec->second;
                outcome.haveRecord = true;
                result.fullRunEquivalentCycles += std::max(
                    outcome.record.cycles, prep_->golden.cycles);
                break;
            }
            const auto rep = resumed_by_id.find(pruned.repRunId);
            if (rep == resumed_by_id.end())
                panic("campaign: pruned run %s has no representative "
                      "%s in this view",
                      pruned.runId, pruned.repRunId);
            // The representative came from the resume stream: only
            // its classified outcome survives, not the full record.
            if (!outcomeClassFromName(rep->second->outcome,
                                      outcome.cls))
                fatal("campaign: resume record %s has unknown "
                      "outcome class '%s'",
                      rep->second->runId, rep->second->outcome);
            outcome.subclass = rep->second->subclass;
            outcome.record.cycles = rep->second->cycles;
            outcome.record.instructions = rep->second->instructions;
            result.fullRunEquivalentCycles +=
                std::max(outcome.record.cycles, prep_->golden.cycles);
            break;
          }
          case SiteVerdict::Simulate:
            panic("campaign: Simulate verdict among pruned runs "
                  "(run %s)",
                  pruned.runId);
        }
        result.pruned.push_back(std::move(outcome));
    }
    return result;
}

ClassCounts
CampaignResult::classify(const Parser &parser) const
{
    ClassCounts counts;
    for (const syskit::RunRecord &record : records)
        counts.add(parser.classify(golden, record).cls);
    for (const PrunedRunOutcome &outcome : pruned) {
        counts.add(outcome.haveRecord
                       ? parser.classify(golden, outcome.record).cls
                       : outcome.cls);
    }
    return counts;
}

} // namespace dfi::inject

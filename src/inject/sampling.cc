#include "inject/sampling.hh"

#include <cmath>

#include "common/logging.hh"

namespace dfi::inject
{

namespace
{

/**
 * Acklam's rational approximation of the standard normal quantile
 * function (relative error < 1.15e-9 — far below sampling noise).
 */
double
probit(double p)
{
    static const double a[] = {-3.969683028665376e+01,
                               2.209460984245205e+02,
                               -2.759285104469687e+02,
                               1.383577518672690e+02,
                               -3.066479806614716e+01,
                               2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01,
                               1.615858368580409e+02,
                               -1.556989798598866e+02,
                               6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03,
                               -3.223964580411365e-01,
                               -2.400758277161838e+00,
                               -2.549732539343734e+00,
                               4.374664141464968e+00,
                               2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03,
                               3.224671290700398e-01,
                               2.445134137142996e+00,
                               3.754408661907416e+00};
    const double plow = 0.02425;

    if (p <= 0.0 || p >= 1.0)
        fatal("probit: probability %s out of (0, 1)", p);
    if (p < plow) {
        const double q = std::sqrt(-2 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
                 c[4]) *
                    q +
                c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
    }
    if (p <= 1 - plow) {
        const double q = p - 0.5;
        const double r = q * q;
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r +
                 a[4]) *
                    r +
                a[5]) *
               q /
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r +
                 b[4]) *
                    r +
                1);
    }
    const double q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
                 q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

} // namespace

double
confidenceZScore(double confidence)
{
    if (confidence <= 0.0 || confidence >= 1.0)
        fatal("confidence %s out of (0, 1)", confidence);
    return probit(0.5 + confidence / 2.0);
}

std::uint64_t
requiredInjections(std::uint64_t population, double confidence,
                   double margin, double p)
{
    if (margin <= 0.0 || margin >= 1.0)
        fatal("error margin %s out of (0, 1)", margin);
    const double t = confidenceZScore(confidence);
    const double numerator = t * t * p * (1.0 - p) / (margin * margin);
    // Sample sizes round UP: rounding to nearest can return a count
    // whose achieved margin falls short of the requested one.
    if (population == 0) {
        // Infinite-population limit.
        return static_cast<std::uint64_t>(std::ceil(numerator));
    }
    const double n_pop = static_cast<double>(population);
    const double n =
        n_pop / (1.0 + (margin * margin * (n_pop - 1.0)) /
                           (t * t * p * (1.0 - p)));
    return static_cast<std::uint64_t>(std::ceil(n));
}

double
achievedMargin(std::uint64_t injections, std::uint64_t population,
               double confidence, double p)
{
    if (injections == 0)
        fatal("achievedMargin: zero injections");
    const double t = confidenceZScore(confidence);
    const double n = static_cast<double>(injections);
    double finite = 1.0;
    if (population > 0) {
        const double n_pop = static_cast<double>(population);
        finite = (n_pop - n) / (n_pop - 1.0);
        if (finite < 0.0)
            finite = 0.0;
    }
    return t * std::sqrt(p * (1.0 - p) / n * finite);
}

} // namespace dfi::inject

/**
 * @file
 * Shard-stream merge: recombines the per-shard JSONL run streams of
 * one campaign (`dfi-campaign --shard I/N`) into artifacts
 * byte-identical to the unsharded run.
 *
 * This is what makes sharding safe to use: the merge *proves* the
 * shards belong together (identical headers — same schema, config
 * echo, golden reference and `runs_total`), proves coverage (every
 * runId in 0..runs_total-1 exactly once, no duplicates), and then
 * reuses the writer's own serialisation paths — the parsed header
 * re-dumps byte-identically (common/json round-trip guarantee), the
 * records re-serialise through TelemetryRecord::toJson(), and the
 * summary is recomputed from the merged records through the shared
 * SummaryAccumulator.  Nothing is "patched together": a merged
 * artifact either equals the serial artifact byte-for-byte or the
 * merge refuses.
 *
 * Merged summaries always echo the volatile `jobs` field as zero:
 * merging is a host-neutral operation, and zero is what a campaign
 * with timing capture off (the byte-comparable mode) writes anyway.
 */

#ifndef DFI_INJECT_MERGE_HH
#define DFI_INJECT_MERGE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dfi::inject
{

/** Output of a successful shard merge. */
struct MergeResult
{
    /** Merged JSONL run stream (header + records in runId order). */
    std::string runsJsonl;
    /** Summary recomputed from the merged records. */
    std::string summaryJson;
    /** Number of merged records (== the header's runs_total). */
    std::uint64_t runs = 0;
    /** Non-fatal reader diagnostics (e.g. torn tails dropped). */
    std::vector<std::string> warnings;
};

/**
 * Merge shard run streams into the unsharded artifacts.  Shard
 * streams are external inputs, so every defect — unreadable file,
 * wrong artifact kind, header mismatch across shards, duplicate or
 * missing runId — reports through `error` (return false) rather than
 * throwing.
 */
bool mergeTelemetryStreams(const std::vector<std::string> &paths,
                           MergeResult &out, std::string &error);

/**
 * Convenience: mergeTelemetryStreams(), then write `<base>.jsonl` and
 * `<base>.summary.json`.  I/O failure also reports through `error`.
 */
bool mergeTelemetryFiles(const std::vector<std::string> &paths,
                         const std::string &base, MergeResult &out,
                         std::string &error);

} // namespace dfi::inject

#endif // DFI_INJECT_MERGE_HH

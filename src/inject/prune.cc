#include "inject/prune.hh"

#include <algorithm>
#include <map>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "storage/faultable_array.hh"
#include "uarch/ooo_core.hh"

namespace dfi::inject
{

namespace
{

/** One access of a traced entry, in global program order (`seq`). */
struct AccessEvent
{
    std::uint64_t seq = 0;
    std::uint64_t cycle = 0; //!< the tick it happened in
    std::uint32_t bitLo = 0;
    std::uint32_t width = 0;
    bool isWrite = false;
};

/**
 * Records every access of the interesting entries of one structure.
 * The seq and cycle counters are shared across all tracers so the
 * merged trace is in global program order.
 */
class StructureTracer : public dfi::AccessObserver
{
  public:
    StructureTracer(std::uint64_t &seq, const std::uint64_t &cycle)
        : seq_(seq), cycle_(cycle)
    {
    }

    void
    addEntry(std::uint32_t entry)
    {
        events_.try_emplace(entry);
    }

    void
    onAccess(const dfi::FaultableArray &, std::size_t entry,
             std::size_t bit, std::size_t width,
             bool is_write) override
    {
        const auto it = events_.find(static_cast<std::uint32_t>(entry));
        if (it == events_.end())
            return;
        it->second.push_back(
            AccessEvent{seq_++, cycle_, static_cast<std::uint32_t>(bit),
                        static_cast<std::uint32_t>(width), is_write});
    }

    const std::vector<AccessEvent> *
    eventsFor(std::uint32_t entry) const
    {
        const auto it = events_.find(entry);
        return it == events_.end() ? nullptr : &it->second;
    }

  private:
    std::uint64_t &seq_;
    const std::uint64_t &cycle_;
    std::unordered_map<std::uint32_t, std::vector<AccessEvent>>
        events_;
};

} // namespace

std::vector<SiteClassification>
classifySites(uarch::OooCore &probe, const syskit::RunRecord &golden,
              const std::vector<FaultSite> &sites)
{
    std::vector<SiteClassification> out(sites.size());
    if (sites.empty())
        return out;
    if (probe.cycle() != 0)
        panic("prune: trace core already ticked (cycle %s)",
              probe.cycle());
    if (golden.cycles == 0)
        panic("prune: zero-length golden run");

    // Attach one tracer per structure, restricted to the entries the
    // site set actually targets.
    std::uint64_t seq = 0;
    std::uint64_t current_cycle = 0;
    std::map<dfi::StructureId, StructureTracer> tracers;
    for (const FaultSite &site : sites) {
        auto [it, fresh] = tracers.try_emplace(
            site.structure, seq, current_cycle);
        it->second.addEntry(site.entry);
        if (site.cycle == 0 || site.cycle > golden.cycles)
            panic("prune: site cycle %s outside [1, %s]", site.cycle,
                  golden.cycles);
    }
    for (auto &[structure, tracer] : tracers) {
        dfi::FaultableArray *array = probe.arrayFor(structure);
        if (array == nullptr)
            panic("prune: structure '%s' has no array on this core",
                  dfi::structureName(structure));
        array->setObserver(&tracer);
    }

    // Liveness checkpoints: evaluate entryLive at exactly the state
    // the dispatcher's early-stop rule (i) sees — after tick c-1,
    // before tick c — by interleaving the checks with the trace run.
    std::vector<std::size_t> by_cycle(sites.size());
    for (std::size_t i = 0; i < sites.size(); ++i)
        by_cycle[i] = i;
    std::sort(by_cycle.begin(), by_cycle.end(),
              [&sites](std::size_t a, std::size_t b) {
                  return sites[a].cycle < sites[b].cycle;
              });
    std::vector<bool> live(sites.size(), false);

    // instructions committed after each successful tick; index 0 is
    // the reset state (the dispatcher's record for a stop before
    // tick 1).
    std::vector<std::uint64_t> committed_after(golden.cycles + 1, 0);
    committed_after[0] = probe.committedInstructions();

    std::size_t next_check = 0;
    std::uint64_t terminal_cycle = 0;
    while (true) {
        const std::uint64_t next_cycle = probe.cycle() + 1;
        if (next_cycle > golden.cycles)
            fatal("prune: trace ran past the golden run length "
                  "(cycle %s > %s) — nondeterministic model?",
                  next_cycle, golden.cycles);
        while (next_check < by_cycle.size() &&
               sites[by_cycle[next_check]].cycle <= next_cycle) {
            const FaultSite &site = sites[by_cycle[next_check]];
            live[by_cycle[next_check]] =
                probe.entryLive(site.structure, site.entry);
            ++next_check;
        }
        current_cycle = next_cycle;
        if (!probe.tick()) {
            terminal_cycle = next_cycle;
            break;
        }
        if (probe.cycle() <= golden.cycles)
            committed_after[probe.cycle()] =
                probe.committedInstructions();
    }

    for (auto &[structure, tracer] : tracers)
        probe.arrayFor(structure)->setObserver(nullptr);

    // The trace is only usable if it reproduced the golden run
    // exactly; anything else means the model is nondeterministic or
    // the probe was configured differently.
    const syskit::RunRecord &traced = probe.record();
    if (traced.term != syskit::Termination::Exited ||
        traced.cycles != golden.cycles ||
        traced.instructions != golden.instructions ||
        traced.output != golden.output) {
        fatal("prune: trace run diverged from the golden run "
              "(%s cycles vs %s) — refusing to classify",
              traced.cycles, golden.cycles);
    }
    if (next_check != by_cycle.size())
        panic("prune: %s sites were never liveness-checked",
              by_cycle.size() - next_check);

    // Group sites by (structure, entry, bit) so each group filters
    // its entry's trace down to covering events exactly once.
    std::map<std::tuple<dfi::StructureId, std::uint32_t, std::uint32_t>,
             std::vector<std::size_t>>
        groups;
    for (std::size_t i = 0; i < sites.size(); ++i) {
        groups[{sites[i].structure, sites[i].entry, sites[i].bit}]
            .push_back(i);
    }

    // Equivalence classes, collected across all (structure, entry,
    // bit) groups.  Within one group the first-covering-read event's
    // global seq keys the class; across groups the same read event
    // covers *different* bits, so classes never merge across groups.
    std::vector<std::vector<std::size_t>> real_classes;

    for (const auto &[key, members] : groups) {
        const auto &[structure, entry, bit] = key;
        const std::vector<AccessEvent> *events =
            tracers.at(structure).eventsFor(entry);

        // Covering events of this bit, in program order (their cycles
        // are nondecreasing, so lower_bound by cycle finds the first
        // one at or after any injection cycle).
        std::vector<AccessEvent> covering;
        if (events != nullptr) {
            for (const AccessEvent &event : *events) {
                if (event.bitLo <= bit &&
                    bit < event.bitLo + event.width)
                    covering.push_back(event);
            }
        }

        std::map<std::uint64_t, std::vector<std::size_t>> classes;
        for (const std::size_t i : members) {
            const FaultSite &site = sites[i];
            SiteClassification &cls = out[i];
            if (!live[i]) {
                // Early-stop rule (i) fires at next_cycle == c with
                // the core still at cycle c-1.
                cls.verdict = SiteVerdict::InvalidEntry;
                cls.cycles = site.cycle - 1;
                cls.instructions = committed_after[site.cycle - 1];
                continue;
            }
            const auto first = std::lower_bound(
                covering.begin(), covering.end(), site.cycle,
                [](const AccessEvent &event, std::uint64_t cycle) {
                    return event.cycle < cycle;
                });
            if (first == covering.end()) {
                // Never accessed again: the flip is never observed
                // and the run completes as the golden record.
                cls.verdict = SiteVerdict::GoldenRun;
                cls.cycles = golden.cycles;
                cls.instructions = golden.instructions;
                continue;
            }
            if (first->isWrite) {
                if (first->cycle == terminal_cycle) {
                    // The dispatcher checks the overwrite watch only
                    // after a *successful* tick; a first overwrite
                    // during the terminal tick therefore yields the
                    // completed (golden-identical) record, not an
                    // early stop.
                    cls.verdict = SiteVerdict::GoldenRun;
                    cls.cycles = golden.cycles;
                    cls.instructions = golden.instructions;
                } else {
                    // Early-stop rule (ii) fires right after the tick
                    // the overwrite happened in.
                    cls.verdict = SiteVerdict::DeadOverwrite;
                    cls.cycles = first->cycle;
                    cls.instructions = committed_after[first->cycle];
                }
                continue;
            }
            // First covering access reads the (corrupted) bit: the
            // fault becomes architecturally visible there.  All sites
            // of this bit sharing that first read produce
            // byte-identical runs.
            cls.verdict = SiteVerdict::Simulate;
            classes[first->seq].push_back(i);
        }
        for (auto &[first_read_seq, class_members] : classes) {
            if (class_members.size() < 2)
                continue;
            std::sort(class_members.begin(), class_members.end(),
                      [&sites](std::size_t a, std::size_t b) {
                          return sites[a].runId < sites[b].runId;
                      });
            real_classes.push_back(std::move(class_members));
        }
    }

    // Collapse classes of two or more sites onto their lowest-runId
    // representative.  Class ids are 1-based, assigned in ascending
    // representative-runId order, so they are deterministic and
    // independent of container iteration order.
    std::sort(real_classes.begin(), real_classes.end(),
              [&sites](const std::vector<std::size_t> &a,
                       const std::vector<std::size_t> &b) {
                  return sites[a[0]].runId < sites[b[0]].runId;
              });
    for (std::size_t c = 0; c < real_classes.size(); ++c) {
        const std::vector<std::size_t> &members = real_classes[c];
        const std::uint64_t class_id = c + 1;
        const std::uint64_t rep_run = sites[members[0]].runId;
        out[members[0]].pruneClass = class_id;
        for (std::size_t m = 1; m < members.size(); ++m) {
            SiteClassification &cls = out[members[m]];
            cls.verdict = SiteVerdict::EquivMember;
            cls.repRunId = rep_run;
            cls.pruneClass = class_id;
        }
    }
    return out;
}

} // namespace dfi::inject

/**
 * @file
 * Differential reports: the paper's per-figure presentation.
 *
 * A FigureReport collects, per benchmark, the classification of the
 * three setups (M-x86, G-x86, G-ARM) and renders the terminal-text
 * analog of the stacked-bar figures (Figs. 2-6), including the
 * rightmost average bars and the vulnerability summary the paper's
 * analysis quotes.
 */

#ifndef DFI_INJECT_REPORT_HH
#define DFI_INJECT_REPORT_HH

#include <map>
#include <string>
#include <vector>

#include "common/json.hh"
#include "inject/parser.hh"

namespace dfi::inject
{

/** One cell: a benchmark x setup classification. */
struct FigureCell
{
    std::string benchmark;
    std::string setup; //!< "M-x86", "G-x86", "G-ARM"
    ClassCounts counts;
};

/** A whole figure. */
class FigureReport
{
  public:
    FigureReport(std::string title, std::vector<std::string> setups);

    void add(const std::string &benchmark, const std::string &setup,
             const ClassCounts &counts);

    /** Average counts of one setup across benchmarks. */
    ClassCounts average(const std::string &setup) const;

    /** Vulnerability (non-masked %) of one benchmark x setup cell. */
    double vulnerability(const std::string &benchmark,
                         const std::string &setup) const;

    /** Render the classification table (per-class percentages). */
    std::string renderTable() const;

    /** Render ASCII stacked bars like the paper's figures. */
    std::string renderBars(int width = 50) const;

    /** Render the average-vulnerability comparison summary. */
    std::string renderSummary() const;

    /**
     * The figure's data as JSON: per-cell counts/percentages plus
     * the per-setup averages (the machine-readable twin of
     * renderTable(), written next to every bench's text output).
     */
    json::Value toJson() const;

    const std::vector<FigureCell> &cells() const { return cells_; }
    const std::vector<std::string> &benchmarks() const
    {
        return benchmarks_;
    }

  private:
    const FigureCell *find(const std::string &benchmark,
                           const std::string &setup) const;

    std::string title_;
    std::vector<std::string> setups_;
    std::vector<std::string> benchmarks_; //!< insertion order
    std::vector<FigureCell> cells_;
};

} // namespace dfi::inject

#endif // DFI_INJECT_REPORT_HH

#include "inject/target.hh"

#include "common/logging.hh"

namespace dfi::inject
{

using dfi::StructureId;

const std::vector<std::string> &
componentNames()
{
    static const std::vector<std::string> names = {
        "int_regfile", "fp_regfile", "issue_queue", "lsq",
        "l1d",         "l1d_tag",    "l1d_valid",   "l1i",
        "l1i_tag",     "l1i_valid",  "l2",          "l2_tag",
        "l2_valid",    "dtlb",       "itlb",        "btb",
        "ras",         "prefetchers"};
    return names;
}

std::vector<StructureId>
resolveComponent(const std::string &component, uarch::OooCore &core)
{
    std::vector<StructureId> wanted;
    if (component == "int_regfile") {
        wanted = {StructureId::IntRegFile};
    } else if (component == "fp_regfile") {
        wanted = {StructureId::FpRegFile};
    } else if (component == "issue_queue") {
        wanted = {StructureId::IssueQueue};
    } else if (component == "lsq") {
        wanted = {StructureId::LoadStoreQueue, StructureId::LoadQueue,
                  StructureId::StoreQueue};
    } else if (component == "l1d") {
        wanted = {StructureId::L1DData};
    } else if (component == "l1d_tag") {
        wanted = {StructureId::L1DTag};
    } else if (component == "l1d_valid") {
        wanted = {StructureId::L1DValid};
    } else if (component == "l1i") {
        wanted = {StructureId::L1IData};
    } else if (component == "l1i_tag") {
        wanted = {StructureId::L1ITag};
    } else if (component == "l1i_valid") {
        wanted = {StructureId::L1IValid};
    } else if (component == "l2") {
        wanted = {StructureId::L2Data};
    } else if (component == "l2_tag") {
        wanted = {StructureId::L2Tag};
    } else if (component == "l2_valid") {
        wanted = {StructureId::L2Valid};
    } else if (component == "dtlb") {
        wanted = {StructureId::DTlb};
    } else if (component == "itlb") {
        wanted = {StructureId::ITlb};
    } else if (component == "btb") {
        wanted = {StructureId::Btb, StructureId::BtbIndirect};
    } else if (component == "ras") {
        wanted = {StructureId::Ras};
    } else if (component == "prefetchers") {
        wanted = {StructureId::PrefetchL1D, StructureId::PrefetchL1I};
    } else {
        fatal("unknown injection component '%s'", component);
    }

    std::vector<StructureId> present;
    for (StructureId id : wanted) {
        if (core.arrayFor(id) != nullptr)
            present.push_back(id);
    }
    return present;
}

std::uint64_t
componentBits(const std::string &component, uarch::OooCore &core)
{
    std::uint64_t bits = 0;
    for (StructureId id : resolveComponent(component, core))
        bits += core.arrayFor(id)->totalBits();
    return bits;
}

} // namespace dfi::inject

#include "inject/mask_gen.hh"

#include <fstream>

#include "common/logging.hh"
#include "inject/target.hh"

namespace dfi::inject
{

using dfi::FaultMask;
using dfi::FaultType;
using dfi::StructureId;

std::string
populationName(Population population)
{
    switch (population) {
      case Population::SingleBit:
        return "single";
      case Population::DoubleAdjacent:
        return "double-adjacent";
      case Population::DoubleRandom:
        return "double-random";
      case Population::MultiStructure:
        return "multi-structure";
    }
    panic("populationName: bad population %s",
          static_cast<int>(population));
}

namespace
{

/** Pick a (structure, entry, bit) uniformly over the component bits. */
void
pickLocation(dfi::Rng &rng, const std::vector<StructureId> &structs,
             uarch::OooCore &core, FaultMask &mask)
{
    std::uint64_t total = 0;
    for (StructureId id : structs)
        total += core.arrayFor(id)->totalBits();
    std::uint64_t pick = rng.nextBounded(total);
    for (StructureId id : structs) {
        dfi::FaultableArray *array = core.arrayFor(id);
        if (pick < array->totalBits()) {
            mask.structure = id;
            mask.entry =
                static_cast<std::uint32_t>(pick / array->bitsPerEntry());
            mask.bit =
                static_cast<std::uint32_t>(pick % array->bitsPerEntry());
            return;
        }
        pick -= array->totalBits();
    }
    panic("pickLocation: weighted pick out of range");
}

void
fillTiming(dfi::Rng &rng, const MaskGenConfig &cfg, FaultMask &mask)
{
    mask.type = cfg.type;
    switch (cfg.type) {
      case FaultType::Transient:
        mask.cycle = rng.nextRange(1, cfg.maxCycle);
        break;
      case FaultType::Intermittent:
        mask.cycle = rng.nextRange(1, cfg.maxCycle);
        mask.duration =
            rng.nextRange(cfg.intermittentMin, cfg.intermittentMax);
        mask.stuckValue = rng.nextBool();
        break;
      case FaultType::Permanent:
        mask.cycle = 0;
        mask.stuckValue = rng.nextBool();
        break;
    }
}

} // namespace

std::vector<FaultMask>
generateMasks(const MaskGenConfig &cfg, uarch::OooCore &core)
{
    if (cfg.maxCycle == 0 && cfg.type != FaultType::Permanent)
        fatal("mask generation needs the golden run length (maxCycle)");
    const std::vector<StructureId> structs =
        resolveComponent(cfg.component, core);
    if (structs.empty())
        fatal("component '%s' has no injectable structures on core "
              "'%s'",
              cfg.component, core.config().name);

    dfi::Rng rng(cfg.seed);
    std::vector<FaultMask> masks;
    masks.reserve(cfg.numRuns);

    for (std::uint64_t run = 0; run < cfg.numRuns; ++run) {
        FaultMask first;
        first.runId = static_cast<std::uint32_t>(run);
        first.core = cfg.core;
        pickLocation(rng, structs, core, first);
        fillTiming(rng, cfg, first);
        masks.push_back(first);

        switch (cfg.population) {
          case Population::SingleBit:
            break;
          case Population::DoubleAdjacent: {
            FaultMask second = first;
            const auto bits = core.arrayFor(first.structure)
                                  ->bitsPerEntry();
            second.bit = (first.bit + 1) % bits;
            masks.push_back(second);
            break;
          }
          case Population::DoubleRandom: {
            FaultMask second = first;
            pickLocation(rng, {first.structure}, core, second);
            fillTiming(rng, cfg, second);
            second.runId = first.runId;
            masks.push_back(second);
            break;
          }
          case Population::MultiStructure: {
            FaultMask second = first;
            pickLocation(rng, structs, core, second);
            fillTiming(rng, cfg, second);
            second.runId = first.runId;
            masks.push_back(second);
            break;
          }
        }
    }
    return masks;
}

void
saveMasks(const std::string &path,
          const std::vector<FaultMask> &masks)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open masks repository '%s' for writing", path);
    for (const FaultMask &mask : masks)
        out << mask.toLine() << "\n";
}

std::vector<FaultMask>
loadMasks(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open masks repository '%s'", path);
    std::vector<FaultMask> masks;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty())
            masks.push_back(FaultMask::fromLine(line));
    }
    return masks;
}

} // namespace dfi::inject

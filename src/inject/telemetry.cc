#include "inject/telemetry.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "common/failpoint.hh"
#include "common/logging.hh"
#include "common/version.hh"
#include "inject/mask_gen.hh"

namespace dfi::inject
{

namespace
{

/** Append one drift line, eliding after a cap. */
class DriftLog
{
  public:
    explicit DriftLog(std::string &report) : report_(report) {}

    void
    add(const std::string &line)
    {
        ++drifts_;
        if (drifts_ <= kMaxLines) {
            report_ += line;
            report_ += '\n';
        } else if (drifts_ == kMaxLines + 1) {
            report_ += "... (further drift elided)\n";
        }
    }

    bool any() const { return drifts_ > 0; }

  private:
    static constexpr std::uint64_t kMaxLines = 20;
    std::string &report_;
    std::uint64_t drifts_ = 0;
};

/** Volatile members skipped by exact comparison at any nesting. */
bool
isVolatileKey(const std::string &key)
{
    return key == "wall_us" || key == "jobs" || key == "volatile" ||
           key == "wall_total_us" || key == "sim_cycles" ||
           key == "restore_us" || key == "sim_cycles_total" ||
           key == "restore_total_us" || key == "prune" ||
           key == "prune_class" || key == "generator";
}

std::string
kindName(json::Kind kind)
{
    switch (kind) {
      case json::Kind::Null:
        return "null";
      case json::Kind::Bool:
        return "bool";
      case json::Kind::Int:
      case json::Kind::Double:
        return "number";
      case json::Kind::String:
        return "string";
      case json::Kind::Array:
        return "array";
      case json::Kind::Object:
        return "object";
    }
    return "?";
}

std::string
scalarText(const json::Value &v)
{
    return v.dump();
}

/** Recursive exact comparison, skipping volatile members. */
void
compareValues(const json::Value &a, const json::Value &b,
              const std::string &path, DriftLog &log)
{
    const bool numbers = a.isNumber() && b.isNumber();
    if (!numbers && a.kind() != b.kind()) {
        log.add(path + ": kind " + kindName(a.kind()) +
                " != " + kindName(b.kind()));
        return;
    }
    switch (a.kind()) {
      case json::Kind::Object: {
        for (const auto &[key, value] : a.members()) {
            if (isVolatileKey(key))
                continue;
            const json::Value *other = b.find(key);
            if (other == nullptr) {
                log.add(path + "." + key + ": only in first file");
                continue;
            }
            compareValues(value, *other, path + "." + key, log);
        }
        for (const auto &[key, value] : b.members()) {
            if (!isVolatileKey(key) && !a.has(key))
                log.add(path + "." + key + ": only in second file");
        }
        return;
      }
      case json::Kind::Array: {
        if (a.size() != b.size()) {
            log.add(path + ": length " + std::to_string(a.size()) +
                    " != " + std::to_string(b.size()));
            return;
        }
        for (std::size_t i = 0; i < a.size(); ++i) {
            compareValues(a.at(i), b.at(i),
                          path + "[" + std::to_string(i) + "]", log);
        }
        return;
      }
      default:
        if (scalarText(a) != scalarText(b))
            log.add(path + ": " + scalarText(a) +
                    " != " + scalarText(b));
        return;
    }
}

/** Per-class percentage map of one artifact (tolerance mode). */
std::map<std::string, double>
classPercentages(const TelemetryFile &file)
{
    std::map<std::string, double> percents;
    if (file.kind == kTelemetrySummaryKind) {
        const json::Value *classes = file.header.find("classes");
        if (classes == nullptr)
            return percents;
        for (const auto &[name, cell] : classes->members()) {
            const json::Value *pct = cell.find("percent");
            if (pct != nullptr)
                percents[name] = pct->asDouble();
        }
        return percents;
    }
    std::map<std::string, std::uint64_t> counts;
    for (const TelemetryRecord &record : file.records)
        ++counts[record.outcome];
    const auto total = static_cast<double>(file.records.size());
    for (const auto &[name, count] : counts) {
        percents[name] =
            total > 0 ? 100.0 * static_cast<double>(count) / total
                      : 0.0;
    }
    return percents;
}

bool
decodeUint(const json::Value &line, const char *key,
           std::uint64_t &out, std::string &error)
{
    const json::Value *v = line.find(key);
    if (v == nullptr || v->kind() != json::Kind::Int ||
        v->isNegative()) {
        error = std::string("record missing numeric field '") + key +
                "'";
        return false;
    }
    out = v->asUint();
    return true;
}

bool
decodeString(const json::Value &line, const char *key,
             std::string &out, std::string &error)
{
    const json::Value *v = line.find(key);
    if (v == nullptr || v->kind() != json::Kind::String) {
        error = std::string("record missing string field '") + key +
                "'";
        return false;
    }
    out = v->asString();
    return true;
}

/** Optional numeric field: absent (older schema) decodes as zero. */
void
decodeOptUint(const json::Value &line, const char *key,
              std::uint64_t &out)
{
    const json::Value *v = line.find(key);
    if (v != nullptr && v->kind() == json::Kind::Int &&
        !v->isNegative())
        out = v->asUint();
}

bool
decodeRecord(const json::Value &line, TelemetryRecord &out,
             std::string &error)
{
    if (!(decodeUint(line, "run", out.runId, error) &&
          decodeUint(line, "seed", out.seed, error) &&
          decodeString(line, "component", out.component, error) &&
          decodeString(line, "structure", out.structure, error) &&
          decodeUint(line, "entry", out.entry, error) &&
          decodeUint(line, "bit", out.bit, error) &&
          decodeString(line, "fault_type", out.faultType, error) &&
          decodeUint(line, "cycle", out.injectionCycle, error) &&
          decodeUint(line, "masks", out.maskCount, error) &&
          decodeString(line, "outcome", out.outcome, error) &&
          decodeString(line, "subclass", out.subclass, error) &&
          decodeUint(line, "instructions", out.instructions,
                     error) &&
          decodeUint(line, "cycles", out.cycles, error))) {
        return false;
    }
    // Volatile fields are tolerated missing so older artifacts and
    // hand-trimmed streams still parse.
    decodeOptUint(line, "sim_cycles", out.simCycles);
    decodeOptUint(line, "restore_us", out.restoreMicros);
    decodeOptUint(line, "wall_us", out.wallMicros);
    decodeOptUint(line, "jobs", out.jobs);
    decodeOptUint(line, "prune_class", out.pruneClass);
    return true;
}

} // namespace

const std::vector<double> &
telemetryHistogramEdges()
{
    // Multiples of the golden run length; early-stopped runs land in
    // the small buckets, timeouts in the last bounded ones.
    static const std::vector<double> edges = {0.125, 0.25, 0.5, 1.0,
                                              2.0,   3.0};
    return edges;
}

json::Value
TelemetryRecord::toJson() const
{
    json::Value line = json::Value::object();
    line.set("run", json::Value::unsignedInt(runId));
    line.set("seed", json::Value::unsignedInt(seed));
    line.set("component", json::Value::string(component));
    line.set("structure", json::Value::string(structure));
    line.set("entry", json::Value::unsignedInt(entry));
    line.set("bit", json::Value::unsignedInt(bit));
    line.set("fault_type", json::Value::string(faultType));
    line.set("cycle", json::Value::unsignedInt(injectionCycle));
    line.set("masks", json::Value::unsignedInt(maskCount));
    line.set("outcome", json::Value::string(outcome));
    line.set("subclass", json::Value::string(subclass));
    line.set("instructions", json::Value::unsignedInt(instructions));
    line.set("cycles", json::Value::unsignedInt(cycles));
    line.set("sim_cycles", json::Value::unsignedInt(simCycles));
    line.set("restore_us", json::Value::unsignedInt(restoreMicros));
    line.set("wall_us", json::Value::unsignedInt(wallMicros));
    line.set("jobs", json::Value::unsignedInt(jobs));
    line.set("prune_class", json::Value::unsignedInt(pruneClass));
    return line;
}

json::Value
telemetryConfigEcho(const CampaignConfig &config)
{
    json::Value echo = json::Value::object();
    echo.set("component", json::Value::string(config.component));
    echo.set("benchmark", json::Value::string(config.benchmark));
    echo.set("scale", json::Value::unsignedInt(config.scale));
    echo.set("core", json::Value::string(config.coreName));
    echo.set("injections",
             json::Value::unsignedInt(config.numInjections));
    echo.set("confidence", json::Value::number(config.confidence));
    echo.set("margin", json::Value::number(config.margin));
    // Outcome-relevant: exhaustive enumeration plans a different run
    // set than sampling (the `prune` strategy knob, by contrast, is
    // volatile — it never changes classifications).
    echo.set("exhaustive", json::Value::boolean(config.exhaustive));
    echo.set("fault_type",
             json::Value::string(faultTypeName(config.faultType)));
    echo.set("population",
             json::Value::string(populationName(config.population)));
    echo.set("intermittent_min",
             json::Value::unsignedInt(config.intermittentMin));
    echo.set("intermittent_max",
             json::Value::unsignedInt(config.intermittentMax));
    echo.set("cache_scale", json::Value::number(config.cacheScale));
    echo.set("timeout_factor",
             json::Value::number(config.timeoutFactor));
    echo.set("early_stop_invalid_entry",
             json::Value::boolean(config.earlyStopInvalidEntry));
    echo.set("early_stop_overwrite",
             json::Value::boolean(config.earlyStopOverwrite));
    // Execution-strategy knobs (checkpointing, jobs, budget, shard,
    // resume) are deliberately absent: they cannot change outcomes,
    // and leaving them out keeps artifacts byte-identical across
    // strategies — shard streams share the unsharded header.
    echo.set("seed", json::Value::unsignedInt(config.seed));
    return echo;
}

json::Value
telemetryGoldenEcho(const syskit::RunRecord &golden)
{
    json::Value echo = json::Value::object();
    echo.set("cycles", json::Value::unsignedInt(golden.cycles));
    echo.set("instructions",
             json::Value::unsignedInt(golden.instructions));
    echo.set("output_bytes",
             json::Value::unsignedInt(golden.output.size()));
    return echo;
}

namespace
{

json::Value
pruneEcho(const PruneStats &prune)
{
    json::Value echo = json::Value::object();
    echo.set("pruned_static",
             json::Value::unsignedInt(prune.prunedStatic));
    echo.set("pruned_equiv",
             json::Value::unsignedInt(prune.prunedEquiv));
    echo.set("simulated", json::Value::unsignedInt(prune.simulated));
    return echo;
}

} // namespace

json::Value
telemetryRunsHeader(const CampaignConfig &config,
                    const syskit::RunRecord &golden,
                    std::uint64_t total_runs, const PruneStats &prune)
{
    json::Value header = json::Value::object();
    header.set("kind", json::Value::string(kTelemetryRunsKind));
    header.set("schema",
               json::Value::unsignedInt(kTelemetrySchemaVersion));
    // Volatile build echo: names the build for bug reports without
    // participating in exact comparison.
    header.set("generator", json::Value::string(versionString()));
    header.set("config", telemetryConfigEcho(config));
    header.set("golden", telemetryGoldenEcho(golden));
    header.set("runs_total", json::Value::unsignedInt(total_runs));
    // Volatile strategy tallies: campaign-wide (identical in every
    // shard header), so merge's header-equality invariant holds.
    header.set("prune", pruneEcho(prune));
    return header;
}

SummaryAccumulator::SummaryAccumulator(std::uint64_t golden_cycles)
    : goldenCycles_(golden_cycles),
      histogram_(telemetryHistogramEdges().size() + 1, 0)
{
}

void
SummaryAccumulator::add(const TelemetryRecord &record)
{
    OutcomeClass cls = OutcomeClass::Masked;
    if (!outcomeClassFromName(record.outcome, cls))
        fatal("telemetry: unknown outcome class '%s' in run %s",
              record.outcome, record.runId);
    counts_.add(cls);
    totalSimCycles_ += record.simCycles;
    totalRestoreMicros_ += record.restoreMicros;
    totalWallMicros_ += record.wallMicros;

    // Bucket the deterministic run length (not the strategy-dependent
    // simulated cycles): early-stopped runs land in the small
    // buckets, timeouts in the last bounded ones.
    const auto &edges = telemetryHistogramEdges();
    const auto golden_cycles = static_cast<double>(goldenCycles_);
    std::size_t bucket = edges.size();
    for (std::size_t i = 0; i < edges.size(); ++i) {
        if (static_cast<double>(record.cycles) <=
            edges[i] * golden_cycles) {
            bucket = i;
            break;
        }
    }
    ++histogram_[bucket];
}

std::string
SummaryAccumulator::summaryJson(const json::Value &config_echo,
                                const json::Value &golden_echo,
                                std::uint64_t jobs_echo,
                                const PruneStats *prune) const
{
    json::Value doc = json::Value::object();
    doc.set("kind", json::Value::string(kTelemetrySummaryKind));
    doc.set("schema",
            json::Value::unsignedInt(kTelemetrySchemaVersion));
    doc.set("config", config_echo);
    doc.set("golden", golden_echo);
    doc.set("runs", json::Value::unsignedInt(counts_.total()));

    json::Value classes = json::Value::object();
    for (std::size_t c = 0; c < kNumOutcomeClasses; ++c) {
        const auto cls = static_cast<OutcomeClass>(c);
        json::Value cell = json::Value::object();
        cell.set("count", json::Value::unsignedInt(counts_.get(cls)));
        cell.set("percent", json::Value::number(counts_.percent(cls)));
        classes.set(outcomeClassName(cls), std::move(cell));
    }
    doc.set("classes", std::move(classes));
    doc.set("vulnerability_percent",
            json::Value::number(counts_.vulnerability()));

    json::Value lengths = json::Value::object();
    json::Value buckets = json::Value::array();
    const auto &edges = telemetryHistogramEdges();
    for (std::size_t i = 0; i < histogram_.size(); ++i) {
        json::Value bucket = json::Value::object();
        bucket.set("le_golden_x",
                   i < edges.size() ? json::Value::number(edges[i])
                                    : json::Value::null());
        bucket.set("count", json::Value::unsignedInt(histogram_[i]));
        buckets.push(std::move(bucket));
    }
    lengths.set("histogram", std::move(buckets));
    doc.set("run_cycles", std::move(lengths));

    // Volatile (a strategy tally): pruned and unpruned summaries of
    // the same campaign stay exact-equal.
    if (prune != nullptr)
        doc.set("prune", pruneEcho(*prune));

    json::Value volatile_echo = json::Value::object();
    volatile_echo.set("jobs", json::Value::unsignedInt(jobs_echo));
    volatile_echo.set("sim_cycles_total",
                      json::Value::unsignedInt(totalSimCycles_));
    volatile_echo.set("restore_total_us",
                      json::Value::unsignedInt(totalRestoreMicros_));
    volatile_echo.set("wall_total_us",
                      json::Value::unsignedInt(totalWallMicros_));
    doc.set("volatile", std::move(volatile_echo));
    return doc.dumpPretty();
}

TelemetryWriter::TelemetryWriter(const CampaignConfig &config,
                                 const syskit::RunRecord &golden,
                                 std::uint64_t total_runs,
                                 std::uint32_t jobs,
                                 const PruneStats &prune,
                                 TelemetryOptions options)
    : config_(config), golden_(golden), jobs_(jobs), prune_(prune),
      options_(options), acc_(golden.cycles)
{
    lines_ =
        telemetryRunsHeader(config_, golden_, total_runs, prune_)
            .dump();
    lines_ += '\n';
}

void
TelemetryWriter::setPruned(const std::vector<PrunedRun> &pruned)
{
    if (anyEmitted_)
        panic("telemetry: setPruned after records were emitted");
    prunedQueue_ = pruned;
    std::sort(prunedQueue_.begin(), prunedQueue_.end(),
              [](const PrunedRun &a, const PrunedRun &b) {
                  return a.runId < b.runId;
              });
    nextPruned_ = 0;
    for (const PrunedRun &run : prunedQueue_) {
        if (run.verdict == SiteVerdict::EquivMember)
            reps_.try_emplace(run.repRunId);
    }
}

void
TelemetryWriter::harvestRep(std::uint64_t run_id,
                            const TelemetryRecord &record)
{
    const auto it = reps_.find(run_id);
    if (it == reps_.end())
        return;
    it->second.outcome = record.outcome;
    it->second.subclass = record.subclass;
    it->second.instructions = record.instructions;
    it->second.cycles = record.cycles;
    it->second.known = true;
}

void
TelemetryWriter::emitPruned(const PrunedRun &pruned)
{
    if (anyEmitted_ && pruned.runId <= lastRunId_)
        panic("telemetry: pruned run %s out of order (last was %s)",
              pruned.runId, lastRunId_);

    TelemetryRecord record;
    record.runId = pruned.runId;
    record.seed = config_.seed;
    record.component = config_.component;
    record.structure = structureName(pruned.mask.structure);
    record.entry = pruned.mask.entry;
    record.bit = pruned.mask.bit;
    record.faultType = faultTypeName(pruned.mask.type);
    record.injectionCycle = pruned.mask.cycle;
    record.maskCount = 1;
    record.pruneClass = pruned.pruneClass;
    // Volatile measurements (sim_cycles, restore_us, wall_us, jobs)
    // stay zero: nothing was simulated.

    switch (pruned.verdict) {
      case SiteVerdict::InvalidEntry:
      case SiteVerdict::DeadOverwrite: {
        // Exactly the early-stop record the dispatcher would have
        // produced, classified by the same parser.
        syskit::RunRecord stop;
        stop.earlyStopMasked = true;
        stop.earlyStopReason =
            pruned.verdict == SiteVerdict::InvalidEntry
                ? "invalid-entry"
                : "overwritten-before-read";
        stop.cycles = pruned.cycles;
        stop.instructions = pruned.instructions;
        const Classification cls = parser_.classify(golden_, stop);
        record.outcome = outcomeClassName(cls.cls);
        record.subclass = cls.subclass;
        record.instructions = stop.instructions;
        record.cycles = stop.cycles;
        break;
      }
      case SiteVerdict::GoldenRun: {
        // The fault is never observed: the run completes as the
        // golden record.
        const Classification cls = parser_.classify(golden_, golden_);
        record.outcome = outcomeClassName(cls.cls);
        record.subclass = cls.subclass;
        record.instructions = golden_.instructions;
        record.cycles = golden_.cycles;
        break;
      }
      case SiteVerdict::EquivMember: {
        const auto it = reps_.find(pruned.repRunId);
        if (it == reps_.end() || !it->second.known)
            panic("telemetry: pruned run %s emitted before its "
                  "representative %s",
                  pruned.runId, pruned.repRunId);
        record.outcome = it->second.outcome;
        record.subclass = it->second.subclass;
        record.instructions = it->second.instructions;
        record.cycles = it->second.cycles;
        break;
      }
      case SiteVerdict::Simulate:
        panic("telemetry: Simulate verdict in the pruned queue "
              "(run %s)",
              pruned.runId);
    }

    anyEmitted_ = true;
    lastRunId_ = pruned.runId;
    acc_.add(record);
    appendLine(record.toJson().dump());
}

void
TelemetryWriter::flushPrunedBelow(std::uint64_t run_id)
{
    while (nextPruned_ < prunedQueue_.size() &&
           prunedQueue_[nextPruned_].runId < run_id)
        emitPruned(prunedQueue_[nextPruned_++]);
}

void
TelemetryWriter::flushAllPruned()
{
    while (nextPruned_ < prunedQueue_.size())
        emitPruned(prunedQueue_[nextPruned_++]);
}

void
TelemetryWriter::streamTo(const std::string &base)
{
    if (stream_.is_open())
        panic("telemetry: streamTo called twice");
    if (anyEmitted_)
        panic("telemetry: streamTo after records were emitted");
    streamPath_ = base + ".jsonl";
    stream_.open(streamPath_, std::ios::binary | std::ios::trunc);
    if (!stream_)
        fatal("telemetry: cannot write '%s'", streamPath_);
    // The header goes out (and is flushed) immediately, so even a
    // campaign killed before its first commit leaves a valid,
    // resumable stream.
    if (failpoint::check("telemetry.write").kind ==
        failpoint::Action::Kind::Error)
        stream_.setstate(std::ios::badbit);
    stream_ << lines_;
    stream_.flush();
    if (!stream_)
        fatal("telemetry: write to '%s' failed", streamPath_);
}

void
TelemetryWriter::appendLine(const std::string &line)
{
    lines_ += line;
    lines_ += '\n';
    if (stream_.is_open()) {
        // The telemetry.write failpoint models the disk filling up
        // mid-stream; flipping badbit drives the *real* error branch
        // below rather than a parallel injected one.
        if (failpoint::check("telemetry.write").kind ==
            failpoint::Action::Kind::Error)
            stream_.setstate(std::ios::badbit);
        // One flush per record bounds a kill's damage to a single
        // torn line, which the tolerant reader drops on resume.
        stream_ << line << '\n';
        stream_.flush();
        if (!stream_)
            fatal("telemetry: write to '%s' failed", streamPath_);
    }
}

void
TelemetryWriter::replay(const TelemetryRecord &record)
{
    flushPrunedBelow(record.runId);
    if (anyEmitted_ && record.runId <= lastRunId_)
        fatal("telemetry: resume record %s out of order (last was "
              "%s) — corrupt or reordered resume stream",
              record.runId, lastRunId_);
    anyEmitted_ = true;
    lastRunId_ = record.runId;
    harvestRep(record.runId, record);
    acc_.add(record); // fatal() on an unknown outcome class
    appendLine(record.toJson().dump());
}

void
TelemetryWriter::commit(const RunTask &task, const TaskResult &result)
{
    flushPrunedBelow(task.runId);
    if (anyEmitted_ && task.runId <= lastRunId_)
        panic("telemetry: commit of run %s out of order (last was %s)",
              task.runId, lastRunId_);
    anyEmitted_ = true;
    lastRunId_ = task.runId;

    const Classification classification =
        parser_.classify(golden_, result.record);

    TelemetryRecord record;
    record.runId = task.runId;
    record.seed = config_.seed;
    record.component = config_.component;
    if (!task.masks.empty()) {
        record.structure = structureName(task.masks[0].structure);
        record.entry = task.masks[0].entry;
        record.bit = task.masks[0].bit;
        record.faultType = faultTypeName(task.masks[0].type);
    }
    record.injectionCycle = task.masks.empty() ? 0 : task.firstCycle;
    record.maskCount = task.masks.size();
    record.pruneClass = task.pruneClass;
    record.outcome = outcomeClassName(classification.cls);
    record.subclass = classification.subclass;
    record.instructions = result.record.instructions;
    record.cycles = result.record.cycles;
    if (options_.captureTiming) {
        // Execution-strategy measurements: which cycles were really
        // simulated (and how long the restore took) depends on the
        // checkpoint layout, so they are volatile like wall-clock.
        record.simCycles = result.simulatedCycles;
        record.restoreMicros = result.restoreMicros;
        record.wallMicros = result.wallMicros;
        record.jobs = jobs_;
    }

    harvestRep(task.runId, record);
    acc_.add(record);
    appendLine(record.toJson().dump());
}

std::string
TelemetryWriter::summaryJson() const
{
    return acc_.summaryJson(telemetryConfigEcho(config_),
                            telemetryGoldenEcho(golden_),
                            options_.captureTiming ? jobs_ : 0,
                            &prune_);
}

void
TelemetryWriter::writeFiles(const std::string &base)
{
    // Pruned runs above the last committed runId are still queued.
    flushAllPruned();

    const std::string runs_path = base + ".jsonl";
    const std::string summary_path = base + ".summary.json";
    if (stream_.is_open()) {
        if (runs_path != streamPath_)
            panic("telemetry: writeFiles('%s') while streaming to "
                  "'%s'",
                  runs_path, streamPath_);
        stream_.close();
    } else {
        std::ofstream runs(runs_path, std::ios::binary);
        runs << lines_;
        if (!runs)
            fatal("telemetry: cannot write '%s'", runs_path);
    }
    std::ofstream summary(summary_path, std::ios::binary);
    if (failpoint::check("telemetry.flush").kind ==
        failpoint::Action::Kind::Error)
        summary.setstate(std::ios::badbit);
    summary << summaryJson();
    if (!summary)
        fatal("telemetry: cannot write '%s'", summary_path);
}

bool
parseTelemetry(const std::string &text, TelemetryFile &out,
               std::string &error)
{
    out = TelemetryFile{};

    // A run stream is JSONL: its first line is a complete header
    // object.  A summary is one pretty-printed document, whose first
    // line alone never parses.
    std::istringstream stream(text);
    std::string first_line;
    std::getline(stream, first_line);
    json::Value header;
    std::string line_error;
    if (json::parse(first_line, header, line_error) &&
        header.kind() == json::Kind::Object) {
        const json::Value *kind = header.find("kind");
        if (kind == nullptr ||
            kind->kind() != json::Kind::String) {
            error = "header line has no 'kind'";
            return false;
        }
        if (kind->asString() != kTelemetryRunsKind) {
            error = "unexpected artifact kind '" + kind->asString() +
                    "'";
            return false;
        }
        const json::Value *schema = header.find("schema");
        if (schema == nullptr ||
            schema->kind() != json::Kind::Int ||
            schema->isNegative()) {
            error = "header line has no 'schema'";
            return false;
        }
        if (schema->asUint() > kTelemetrySchemaVersion) {
            error = "unsupported schema version " +
                    std::to_string(schema->asUint());
            return false;
        }
        out.kind = kTelemetryRunsKind;
        out.header = std::move(header);
        std::string line;
        std::uint64_t line_number = 1;
        while (std::getline(stream, line)) {
            ++line_number;
            if (line.empty())
                continue;
            json::Value parsed;
            TelemetryRecord record;
            const bool ok =
                json::parse(line, parsed, line_error) &&
                decodeRecord(parsed, record, line_error);
            if (!ok) {
                // A killed writer tears at most the *final* line of
                // the stream (one flushed write per record).  Only
                // that signature is tolerated — if any complete line
                // follows, the damage is mid-file corruption and must
                // stay a hard error.
                std::string rest;
                bool more = false;
                while (std::getline(stream, rest)) {
                    if (!rest.empty()) {
                        more = true;
                        break;
                    }
                }
                if (!more) {
                    out.warning = "dropped torn trailing line " +
                                  std::to_string(line_number) + " (" +
                                  line_error + ")";
                    break;
                }
                error = "line " + std::to_string(line_number) + ": " +
                        line_error;
                return false;
            }
            out.records.push_back(std::move(record));
        }
        return true;
    }

    json::Value doc;
    if (!json::parse(text, doc, error))
        return false;
    if (doc.kind() != json::Kind::Object || !doc.has("kind") ||
        doc.get("kind").kind() != json::Kind::String ||
        doc.get("kind").asString() != kTelemetrySummaryKind) {
        error = "not a telemetry artifact";
        return false;
    }
    const json::Value *schema = doc.find("schema");
    if (schema == nullptr || schema->kind() != json::Kind::Int ||
        schema->isNegative()) {
        error = "summary has no 'schema'";
        return false;
    }
    if (schema->asUint() > kTelemetrySchemaVersion) {
        error = "unsupported schema version " +
                std::to_string(schema->asUint());
        return false;
    }
    out.kind = kTelemetrySummaryKind;
    out.header = std::move(doc);
    return true;
}

bool
readTelemetryFile(const std::string &path, TelemetryFile &out,
                  std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!parseTelemetry(buffer.str(), out, error)) {
        error = path + ": " + error;
        return false;
    }
    return true;
}

DiffOutcome
diffTelemetry(const TelemetryFile &a, const TelemetryFile &b,
              const DiffOptions &options, std::string &report)
{
    if (a.kind != b.kind) {
        report += "artifact kinds differ: " + a.kind + " vs " +
                  b.kind + "\n";
        return DiffOutcome::Malformed;
    }

    DriftLog log(report);
    if (options.exact) {
        compareValues(a.header, b.header,
                      a.kind == kTelemetrySummaryKind ? "summary"
                                                      : "header",
                      log);
        if (a.kind == kTelemetryRunsKind) {
            if (a.records.size() != b.records.size()) {
                log.add("run count " +
                        std::to_string(a.records.size()) + " != " +
                        std::to_string(b.records.size()));
            } else {
                for (std::size_t i = 0; i < a.records.size(); ++i) {
                    compareValues(a.records[i].toJson(),
                                  b.records[i].toJson(),
                                  "run[" + std::to_string(i) + "]",
                                  log);
                }
            }
        }
        return log.any() ? DiffOutcome::Drift : DiffOutcome::Equal;
    }

    const auto pa = classPercentages(a);
    const auto pb = classPercentages(b);
    auto percent_of = [](const std::map<std::string, double> &map,
                         const std::string &key) {
        const auto it = map.find(key);
        return it == map.end() ? 0.0 : it->second;
    };
    std::map<std::string, bool> classes;
    for (const auto &[name, value] : pa)
        classes[name] = true;
    for (const auto &[name, value] : pb)
        classes[name] = true;
    for (const auto &[name, present] : classes) {
        const double va = percent_of(pa, name);
        const double vb = percent_of(pb, name);
        if (std::abs(va - vb) > options.tolerancePercent) {
            log.add("class " + name + ": " + json::formatNumber(va) +
                    "% vs " + json::formatNumber(vb) +
                    "% (tolerance " +
                    json::formatNumber(options.tolerancePercent) +
                    ")");
        }
    }
    return log.any() ? DiffOutcome::Drift : DiffOutcome::Equal;
}

DiffOutcome
diffTelemetryFiles(const std::string &pathA, const std::string &pathB,
                   const DiffOptions &options, std::string &report)
{
    TelemetryFile a, b;
    std::string error;
    if (!readTelemetryFile(pathA, a, error)) {
        report += error + "\n";
        return DiffOutcome::Malformed;
    }
    if (!readTelemetryFile(pathB, b, error)) {
        report += error + "\n";
        return DiffOutcome::Malformed;
    }
    // Torn-tail drops are diagnostics, not drift by themselves — but
    // a dropped record will surface as a run-count mismatch below.
    if (!a.warning.empty())
        report += pathA + ": warning: " + a.warning + "\n";
    if (!b.warning.empty())
        report += pathB + ": warning: " + b.warning + "\n";
    return diffTelemetry(a, b, options, report);
}

} // namespace dfi::inject

/**
 * @file
 * Fault Mask Generator (module 1 of Fig. 1) and the masks repository.
 *
 * Produces random fault masks — structure, entry, bit, cycle, type,
 * population — for a component/benchmark combination, covering the
 * full model space of Table III: transient, intermittent, permanent,
 * and multi-bit / multi-structure populations.  Masks serialize to a
 * plain-text repository so campaigns are replayable and shareable.
 */

#ifndef DFI_INJECT_MASK_GEN_HH
#define DFI_INJECT_MASK_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "storage/fault.hh"
#include "uarch/ooo_core.hh"

namespace dfi::inject
{

/** Spatial population of one injection run. */
enum class Population : std::uint8_t
{
    SingleBit,      //!< one bit (the paper's study)
    DoubleAdjacent, //!< two adjacent bits of one entry
    DoubleRandom,   //!< two random bits of one structure
    MultiStructure  //!< one bit in each of two structures
};

/** Short lower-case population name used in logs and telemetry. */
std::string populationName(Population population);

/** Mask-generation parameters. */
struct MaskGenConfig
{
    std::string component = "int_regfile";
    dfi::FaultType type = dfi::FaultType::Transient;
    Population population = Population::SingleBit;
    std::uint64_t numRuns = 1000;
    std::uint64_t maxCycle = 0;        //!< golden run length
    std::uint64_t intermittentMin = 50, intermittentMax = 500;
    std::uint8_t core = 0;
    std::uint64_t seed = 1;
};

/** Generate the masks for a campaign (grouped by runId). */
std::vector<dfi::FaultMask> generateMasks(const MaskGenConfig &config,
                                          uarch::OooCore &core);

/** Masks repository: plain-text save/load. */
void saveMasks(const std::string &path,
               const std::vector<dfi::FaultMask> &masks);
std::vector<dfi::FaultMask> loadMasks(const std::string &path);

} // namespace dfi::inject

#endif // DFI_INJECT_MASK_GEN_HH

/**
 * @file
 * The Parser (module 3 of Fig. 1): classifies logged run records into
 * fault-effect classes.
 *
 * Default classification is the paper's six classes — Masked, SDC,
 * DUE, Timeout, Crash, Assert — and, exactly as Section III.B
 * describes, the parser is reconfigurable over the *same* logs:
 * coarse Masked/Non-Masked, DUE split into true/false DUE, or the
 * Simulator-Crash subcategory regrouped under Assert.  No re-run is
 * ever needed to reclassify.
 */

#ifndef DFI_INJECT_PARSER_HH
#define DFI_INJECT_PARSER_HH

#include <array>
#include <cstdint>
#include <string>

#include "syskit/run_record.hh"

namespace dfi::inject
{

/** The six fault-effect classes of Section III.A. */
enum class OutcomeClass : std::uint8_t
{
    Masked,
    Sdc,
    Due,
    Timeout,
    Crash,
    Assert,

    NumClasses
};

constexpr std::size_t kNumOutcomeClasses =
    static_cast<std::size_t>(OutcomeClass::NumClasses);

std::string outcomeClassName(OutcomeClass cls);

/**
 * Inverse of outcomeClassName, for consumers that rebuild class
 * counts from logged records (telemetry resume/merge).  Returns
 * false on an unknown name — record files are external input.
 */
bool outcomeClassFromName(const std::string &name, OutcomeClass &out);

/** Classification of one run, with the finer-grain evidence. */
struct Classification
{
    OutcomeClass cls = OutcomeClass::Masked;
    std::string subclass; //!< e.g. "process-crash", "true-due",
                          //!< "early-stop:overwritten"
};

/** Parser configuration (reclassification knobs). */
struct ParserConfig
{
    /** Regroup simulator crashes under Assert (Section III.B). */
    bool simulatorCrashAsAssert = false;
    /** Annotate DUEs as true/false DUE in the subclass. */
    bool splitDue = true;
};

/** Classifies faulty runs against the golden run. */
class Parser
{
  public:
    Parser() = default;
    explicit Parser(const ParserConfig &config) : cfg_(config) {}

    /** Classify one faulty record against the fault-free reference. */
    Classification classify(const syskit::RunRecord &golden,
                            const syskit::RunRecord &faulty) const;

    const ParserConfig &config() const { return cfg_; }

  private:
    ParserConfig cfg_;
};

/** Per-class counters with percentage helpers. */
struct ClassCounts
{
    std::array<std::uint64_t, kNumOutcomeClasses> counts{};

    void
    add(OutcomeClass cls)
    {
        ++counts[static_cast<std::size_t>(cls)];
    }
    void add(const ClassCounts &other);

    std::uint64_t total() const;
    std::uint64_t get(OutcomeClass cls) const
    {
        return counts[static_cast<std::size_t>(cls)];
    }
    double percent(OutcomeClass cls) const;
    /** Sum of all non-masked classes, in percent (the paper's term). */
    double vulnerability() const;
};

} // namespace dfi::inject

#endif // DFI_INJECT_PARSER_HH

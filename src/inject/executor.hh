/**
 * @file
 * Campaign executor layer (layer 2 of the execution engine).
 *
 * An Executor schedules the independent RunTasks of a CampaignPlan
 * onto workers and returns the TaskResults **in runId order**,
 * regardless of the order in which tasks actually completed.  That
 * ordering guarantee, plus the immutability of the plan and of the
 * shared simulator checkpoints, is the determinism contract: for a
 * fixed (config, program, seed) every executor — serial or any
 * thread count — produces byte-identical records, masks, and
 * classification counts.
 *
 * Two implementations:
 *  - SerialExecutor      runs tasks in runId order on the caller's
 *                        thread (the historical campaign loop);
 *  - ThreadPoolExecutor  runs tasks on N std::thread workers, each
 *                        claiming the next unclaimed task and
 *                        committing its result into the task's slot.
 */

#ifndef DFI_INJECT_EXECUTOR_HH
#define DFI_INJECT_EXECUTOR_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "inject/plan.hh"
#include "inject/reporting.hh"

namespace dfi::inject
{

/**
 * Executes one task.  Must be safe to call concurrently from several
 * threads (InjectionCampaign::runTask is, once prepared).
 */
using TaskRunner = std::function<TaskResult(const RunTask &)>;

/** Executor scheduling parameters. */
struct ExecutorConfig
{
    /** Worker threads; 1 = serial, 0 = hardware concurrency. */
    std::uint32_t jobs = 1;
};

/**
 * Resolve a requested job count: 0 becomes the hardware concurrency
 * (at least 1).
 */
std::uint32_t resolveJobs(std::uint32_t requested);

/** Common executor interface. */
class Executor
{
  public:
    virtual ~Executor() = default;

    virtual const char *name() const = 0;

    /** Worker threads this executor will use. */
    virtual std::uint32_t jobs() const = 0;

    /**
     * Run every task of `plan` through `runner`; report each finished
     * task (and its record's counters) to `reporter`.
     * @return one TaskResult per task, indexed by runId.
     */
    virtual std::vector<TaskResult> run(const CampaignPlan &plan,
                                        const TaskRunner &runner,
                                        CampaignReporter &reporter) = 0;
};

/** Runs tasks one after another on the calling thread. */
class SerialExecutor : public Executor
{
  public:
    const char *name() const override { return "serial"; }
    std::uint32_t jobs() const override { return 1; }
    std::vector<TaskResult> run(const CampaignPlan &plan,
                                const TaskRunner &runner,
                                CampaignReporter &reporter) override;
};

/**
 * Runs tasks on a pool of std::thread workers.  Results are committed
 * into per-runId slots, so the returned vector is bit-identical to
 * SerialExecutor's for the same plan and runner.
 */
class ThreadPoolExecutor : public Executor
{
  public:
    /** @param jobs worker count; 0 = hardware concurrency. */
    explicit ThreadPoolExecutor(std::uint32_t jobs)
        : jobs_(resolveJobs(jobs))
    {}

    const char *name() const override { return "thread-pool"; }
    std::uint32_t jobs() const override { return jobs_; }
    std::vector<TaskResult> run(const CampaignPlan &plan,
                                const TaskRunner &runner,
                                CampaignReporter &reporter) override;

  private:
    std::uint32_t jobs_;
};

/**
 * Pick an executor for the requested job count: SerialExecutor for an
 * effective single job, ThreadPoolExecutor otherwise.
 */
std::unique_ptr<Executor> makeExecutor(const ExecutorConfig &config);

} // namespace dfi::inject

#endif // DFI_INJECT_EXECUTOR_HH

#include "inject/reporting.hh"

#include "common/logging.hh"
#include "inject/plan.hh"

namespace dfi::inject
{

void
CampaignReporter::taskDoneLocked()
{
    ++done_;
    if (progress_)
        progress_(done_, total_);
}

void
CampaignReporter::commit(const RunTask &task, const TaskResult &result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.merge(result.record.stats);
    taskDoneLocked();

    if (!sink_)
        return;
    if (task.ordinal < frontier_ || pending_.count(task.ordinal) != 0)
        panic("reporter: task %s committed twice", task.runId);
    pending_.emplace(task.ordinal, std::make_pair(&task, &result));
    // Replay every consecutively-finished task at the frontier, so
    // the sink observes plan order no matter how completions raced.
    // Ordinals (not runIds) key the frontier: a shard or resume view
    // executes a non-contiguous runId subset, but its ordinals are
    // always 0..n-1 in ascending runId order.
    for (auto it = pending_.begin();
         it != pending_.end() && it->first == frontier_;
         it = pending_.erase(it), ++frontier_) {
        sink_(*it->second.first, *it->second.second);
    }
}

} // namespace dfi::inject

/**
 * @file
 * Campaign planning layer (layer 1 of the execution engine).
 *
 * Planning resolves everything a campaign needs *before* any faulty
 * simulation happens — the configuration, the golden run, the
 * statistical sampling size, and the fault-mask repository — into an
 * immutable CampaignPlan: a flat list of independent RunTasks, one
 * per fault group (runId).  A plan is pure data; executors
 * (inject/executor.hh) may schedule its tasks in any order and on any
 * number of workers, and because every task is self-contained the
 * campaign outcome is bit-identical no matter how the tasks are
 * scheduled.
 */

#ifndef DFI_INJECT_PLAN_HH
#define DFI_INJECT_PLAN_HH

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "inject/campaign.hh"
#include "storage/fault.hh"
#include "syskit/run_record.hh"

namespace dfi::uarch
{
class OooCore;
} // namespace dfi::uarch

namespace dfi::inject
{

/**
 * One independent unit of campaign work: all masks of one fault group
 * (they share a runId), simulated as a single faulty run.
 */
struct RunTask
{
    std::uint64_t runId = 0;
    /**
     * Position of this task in its plan's task list.  For a full
     * plan ordinal == runId; shard/resume views renumber ordinals
     * 0..n-1 while runIds keep their campaign-wide identity.  The
     * reporter's commit frontier advances over ordinals, so ordered
     * commit works for any plan view.
     */
    std::uint64_t ordinal = 0;
    std::vector<dfi::FaultMask> masks;
    std::uint64_t firstCycle = 0; //!< earliest injection cycle
};

/** What executing one RunTask produces. */
struct TaskResult
{
    syskit::RunRecord record;
    std::uint64_t simulatedCycles = 0; //!< post-restore cycles
    /**
     * Host wall-clock spent executing the task, in microseconds.
     * Nondeterministic: telemetry treats it as a volatile field and
     * zeroes it unless timing capture is on.
     */
    std::uint64_t wallMicros = 0;

    /**
     * Host wall-clock spent restoring the starting checkpoint (the
     * COW core copy), in microseconds.  Volatile, like wallMicros.
     */
    std::uint64_t restoreMicros = 0;
};

/**
 * Immutable, fully-resolved execution plan of one campaign.
 *
 * Construction groups the mask repository into per-runId tasks; after
 * that the plan never changes, so concurrent readers need no locking.
 *
 * A plan can also be *viewed*: shardView() and withoutRuns() return
 * plans that execute a subset of the tasks while keeping the full
 * mask repository, seeds, and campaign size (totalRuns()) untouched —
 * the deterministic foundation of `--shard` and `--resume`.  Every
 * run keeps its campaign-wide runId; only the ordinals (commit
 * positions) are renumbered.
 */
class CampaignPlan
{
  public:
    /**
     * Build a plan from an already-generated mask repository.
     * `masks` must be grouped by runId with every runId < `num_runs`
     * (the mask generator's output format).
     */
    CampaignPlan(CampaignConfig config, syskit::RunRecord golden,
                 std::vector<dfi::FaultMask> masks,
                 std::uint64_t num_runs);

    const CampaignConfig &config() const { return config_; }
    const syskit::RunRecord &golden() const { return golden_; }
    const std::vector<dfi::FaultMask> &masks() const { return masks_; }
    const std::vector<RunTask> &tasks() const { return tasks_; }
    std::uint64_t numRuns() const { return tasks_.size(); }

    /**
     * Campaign-wide run count: the size of the original full plan,
     * preserved across views.  Telemetry stamps it into the runs
     * header (`runs_total`) so dfi-merge can prove shard coverage.
     */
    std::uint64_t totalRuns() const { return totalRuns_; }

    /**
     * Deterministic shard view: the tasks whose
     * `runId % shard.count == shard.index`, in runId order.  Mask
     * generation and seeds are untouched — shard I of N simulates
     * exactly the runs an unsharded campaign would label
     * i ≡ I (mod N), so N shards partition the campaign.
     */
    CampaignPlan shardView(const ShardSpec &shard) const;

    /**
     * Resume view: the tasks whose runId is NOT in `completed`
     * (runIds loaded from a partial telemetry stream).  fatal() if a
     * completed runId does not name a task of this plan — resuming
     * against the wrong campaign or shard.
     */
    CampaignPlan
    withoutRuns(const std::unordered_set<std::uint64_t> &completed)
        const;

  private:
    CampaignPlan() = default;

    /** Copy of this plan with `tasks_` filtered by `keep(runId)`. */
    CampaignPlan
    filtered(const std::function<bool(std::uint64_t)> &keep) const;

    CampaignConfig config_;
    syskit::RunRecord golden_;
    std::vector<dfi::FaultMask> masks_;
    std::vector<RunTask> tasks_;
    std::uint64_t totalRuns_ = 0;
};

/**
 * Resolve a configuration into a plan: derive the injection count
 * from the sampling parameters when `config.numInjections` is 0 (the
 * `probe` core supplies the component population), generate the mask
 * repository, and group it into tasks.
 */
CampaignPlan planCampaign(const CampaignConfig &config,
                          const syskit::RunRecord &golden,
                          uarch::OooCore &probe);

} // namespace dfi::inject

#endif // DFI_INJECT_PLAN_HH

/**
 * @file
 * Campaign planning layer (layer 1 of the execution engine): a staged
 * classification pipeline.
 *
 * Planning resolves everything a campaign needs *before* any faulty
 * simulation happens, in four explicit stages:
 *
 *  1. enumerate — resolve the sampling size and generate the mask
 *     repository (or, with `CampaignConfig::exhaustive`, enumerate
 *     every bit x cycle site of the component);
 *  2. classify — statically decide each single-bit transient site
 *     from one instrumented golden re-run (inject/prune.hh): dead
 *     entries and dead-until-overwrite bits are provably Masked,
 *     never-read bits provably reproduce the golden record;
 *  3. dedupe — collapse sites that provably converge to identical
 *     architectural state (same first covering read of the same bit)
 *     into equivalence classes, keeping one representative each;
 *  4. plan — emit RunTasks for the surviving representatives only.
 *
 * The result is an immutable CampaignPlan: a flat list of independent
 * RunTasks plus the pruned runs with their precomputed outcomes.  A
 * plan is pure data; executors (inject/executor.hh) may schedule its
 * tasks in any order and on any number of workers, and because every
 * task is self-contained the campaign outcome is bit-identical no
 * matter how the tasks are scheduled.  Stages 2-3 only run when the
 * configuration allows them (single-bit transients with both
 * early-stop rules on, and not `--no-prune`); otherwise every run is
 * planned as a task, exactly as before.
 */

#ifndef DFI_INJECT_PLAN_HH
#define DFI_INJECT_PLAN_HH

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "inject/campaign.hh"
#include "inject/prune.hh"
#include "storage/fault.hh"
#include "syskit/run_record.hh"

namespace dfi::uarch
{
class OooCore;
} // namespace dfi::uarch

namespace dfi::inject
{

/**
 * One independent unit of campaign work: all masks of one fault group
 * (they share a runId), simulated as a single faulty run.
 */
struct RunTask
{
    std::uint64_t runId = 0;
    /**
     * Position of this task in its plan's task list.  For a full
     * plan ordinal == runId; shard/resume views renumber ordinals
     * 0..n-1 while runIds keep their campaign-wide identity.  The
     * reporter's commit frontier advances over ordinals, so ordered
     * commit works for any plan view.
     */
    std::uint64_t ordinal = 0;
    std::vector<dfi::FaultMask> masks;
    std::uint64_t firstCycle = 0; //!< earliest injection cycle
    /**
     * Nonzero when this task is the simulated representative of a
     * fault-equivalence class; its record fans back out to the
     * class's pruned members at reporting time.
     */
    std::uint64_t pruneClass = 0;
};

/**
 * One run the classification pipeline removed from execution.  Its
 * telemetry record is synthesized at reporting time: statically
 * classified runs get the early-stop (or golden) record the
 * dispatcher would have produced, equivalence-class members get their
 * representative's outcome.
 */
struct PrunedRun
{
    std::uint64_t runId = 0;
    SiteVerdict verdict = SiteVerdict::InvalidEntry;
    /** The site's (single) mask, for the telemetry record fields. */
    dfi::FaultMask mask;
    /** Early-stop record fields (InvalidEntry/DeadOverwrite). */
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    /** Representative runId (EquivMember only). */
    std::uint64_t repRunId = ~0ull;
    /** 1-based equivalence-class id shared with the representative. */
    std::uint64_t pruneClass = 0;
};

/** What executing one RunTask produces. */
struct TaskResult
{
    syskit::RunRecord record;
    std::uint64_t simulatedCycles = 0; //!< post-restore cycles
    /**
     * Host wall-clock spent executing the task, in microseconds.
     * Nondeterministic: telemetry treats it as a volatile field and
     * zeroes it unless timing capture is on.
     */
    std::uint64_t wallMicros = 0;

    /**
     * Host wall-clock spent restoring the starting checkpoint (the
     * COW core copy), in microseconds.  Volatile, like wallMicros.
     */
    std::uint64_t restoreMicros = 0;
};

/**
 * Immutable, fully-resolved execution plan of one campaign.
 *
 * Construction groups the mask repository into per-runId tasks; after
 * that the plan never changes, so concurrent readers need no locking.
 *
 * A plan can also be *viewed*: shardView() and withoutRuns() return
 * plans that execute a subset of the tasks while keeping the full
 * mask repository, seeds, and campaign size (totalRuns()) untouched —
 * the deterministic foundation of `--shard` and `--resume`.  Every
 * run keeps its campaign-wide runId; only the ordinals (commit
 * positions) are renumbered.
 */
class CampaignPlan
{
  public:
    /**
     * Build a plan from an already-generated mask repository.
     * `masks` must be grouped by runId with every runId < `num_runs`
     * (the mask generator's output format).
     */
    CampaignPlan(CampaignConfig config, syskit::RunRecord golden,
                 std::vector<dfi::FaultMask> masks,
                 std::uint64_t num_runs);

    const CampaignConfig &config() const { return config_; }
    const syskit::RunRecord &golden() const { return golden_; }
    const std::vector<dfi::FaultMask> &masks() const { return masks_; }
    const std::vector<RunTask> &tasks() const { return tasks_; }
    std::uint64_t numRuns() const { return tasks_.size(); }

    /**
     * The runs this view does not execute, with their precomputed
     * classifications, in ascending runId order.  Empty unless
     * applyPruning() ran.
     */
    const std::vector<PrunedRun> &pruned() const { return pruned_; }

    /**
     * Campaign-wide pruning tallies.  Deliberately *not* view-local:
     * every shard reports the same numbers, so shard telemetry
     * headers stay identical and merge byte-identically.
     */
    const PruneStats &pruneStats() const { return pruneStats_; }

    /**
     * Campaign-wide run count: the size of the original full plan,
     * preserved across views.  Telemetry stamps it into the runs
     * header (`runs_total`) so dfi-merge can prove shard coverage.
     */
    std::uint64_t totalRuns() const { return totalRuns_; }

    /**
     * Apply the classification pipeline's verdicts (stage 4):
     * non-Simulate runs move from the task list into pruned(),
     * representatives keep their pruneClass, and ordinals renumber.
     * `classifications` must be indexed by runId over the full plan
     * (single-bit campaigns only — one mask per run).  Call at most
     * once, on a full (unviewed) plan.
     */
    void applyPruning(
        const std::vector<SiteClassification> &classifications);

    /**
     * Deterministic shard view: the tasks whose
     * `runId % shard.count == shard.index`, in runId order.  Mask
     * generation and seeds are untouched — shard I of N simulates
     * exactly the runs an unsharded campaign would label
     * i ≡ I (mod N), so N shards partition the campaign.
     *
     * Pruned runs partition the same way, with one twist: an
     * equivalence-class member whose representative falls in a
     * *different* shard is promoted back to a real task (its record
     * is byte-identical to the representative's by construction), so
     * every shard stream is self-contained.
     */
    CampaignPlan shardView(const ShardSpec &shard) const;

    /**
     * Resume view: the tasks whose runId is NOT in `completed`
     * (runIds loaded from a partial telemetry stream; pruned runs
     * appear there too and are dropped the same way).  fatal() if a
     * completed runId names neither a task nor a pruned run of this
     * plan — resuming against the wrong campaign or shard.
     */
    CampaignPlan
    withoutRuns(const std::unordered_set<std::uint64_t> &completed)
        const;

  private:
    CampaignPlan() = default;

    /** Copy of this plan with `tasks_` filtered by `keep(runId)`. */
    CampaignPlan
    filtered(const std::function<bool(std::uint64_t)> &keep) const;

    CampaignConfig config_;
    syskit::RunRecord golden_;
    std::vector<dfi::FaultMask> masks_;
    std::vector<RunTask> tasks_;
    std::vector<PrunedRun> pruned_;
    PruneStats pruneStats_;
    std::uint64_t totalRuns_ = 0;
};

/**
 * Resolve a configuration into a plan by running the pipeline
 * described above.  The `probe` core supplies the component
 * geometries and — when the classification stages are enabled — is
 * ticked through one instrumented golden re-run, so it must be
 * freshly constructed from the campaign's image and configuration.
 */
CampaignPlan planCampaign(const CampaignConfig &config,
                          const syskit::RunRecord &golden,
                          uarch::OooCore &probe);

/**
 * True when the configuration admits static classification and
 * equivalence pruning: single-bit transients with both early-stop
 * rules on (the static verdicts replicate the early-stop records
 * byte-for-byte) and pruning not disabled.
 */
bool planPrunes(const CampaignConfig &config);

} // namespace dfi::inject

#endif // DFI_INJECT_PLAN_HH

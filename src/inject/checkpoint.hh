/**
 * @file
 * Checkpoint store: single-pass snapshot capture for injection runs.
 *
 * The paper's campaigns only scale because a faulty run restarts from
 * a simulator checkpoint near its injection cycle instead of from
 * reset.  This store captures those snapshots *during* the golden
 * pass — prepare() performs exactly one full-program simulation — by
 * observing the golden core every cycle and snapshotting it at an
 * adaptive interval:
 *
 *  - capture starts at a small interval (the golden run length is
 *    unknown in advance);
 *  - whenever the live snapshot count exceeds its cap, every other
 *    non-base snapshot is dropped and the interval doubles, so the
 *    store converges on [targetCount, 2 x targetCount) evenly-spaced
 *    snapshots for any run length;
 *  - a byte budget caps the snapshot count via a conservative
 *    per-snapshot bound (uarch::OooCore::approxStateBytes).  When
 *    even two snapshots do not fit — e.g. full-scale L2 data arrays
 *    under a small budget — capture drops down to the base snapshot
 *    alone (runs start from reset, exactly as with checkpointing
 *    disabled).  Snapshots are dropped, never spilled: restoring
 *    from disk would cost more than re-simulating the interval.
 *
 * Snapshots are COW-backed OooCore copies (storage/cow_buffer.hh):
 * capturing one copies page tables, not pages, and the store holds
 * them as shared const state that any number of workers may
 * copy-construct private cores from concurrently.
 *
 * The capture schedule is a pure function of the policy and the
 * golden run — never of wall-clock or thread timing — so campaign
 * results stay bit-identical for every budget and `--jobs` value.
 */

#ifndef DFI_INJECT_CHECKPOINT_HH
#define DFI_INJECT_CHECKPOINT_HH

#include <cstdint>
#include <memory>
#include <vector>

namespace dfi::isa
{
struct Image;
} // namespace dfi::isa

namespace dfi::serial
{
class Reader;
class Writer;
} // namespace dfi::serial

namespace dfi::uarch
{
class OooCore;
struct CoreConfig;
} // namespace dfi::uarch

namespace dfi::inject
{

/** How checkpoints are captured and bounded. */
struct CheckpointPolicy
{
    /** false = keep only the base (reset) snapshot. */
    bool enabled = true;

    /** Snapshots to converge on (beyond the base one). */
    std::uint32_t targetCount = 6;

    /**
     * Total snapshot memory budget in bytes, charged at the
     * conservative per-snapshot bound; 0 = unlimited.
     */
    std::uint64_t budgetBytes = 0;

    /** Initial capture spacing in cycles (doubles as needed). */
    std::uint64_t initialInterval = 64;
};

/** Captures during the golden pass, serves restores during runs. */
class CheckpointStore
{
  public:
    CheckpointStore() = default;
    explicit CheckpointStore(CheckpointPolicy policy);

    /**
     * Capture the base (pre-tick) snapshot and derive the live cap
     * from the policy and the core's state-size bound.  Resets any
     * previous capture state.
     */
    void captureBase(const uarch::OooCore &core);

    /** Golden-pass hook: call after every tick of the golden core. */
    void observe(const uarch::OooCore &core);

    /**
     * Snapshot to restore for an injection at `cycle`: the latest
     * snapshot *strictly before* it.  Restoring at the injection
     * cycle itself would apply the flip during the cycle->cycle+1
     * transition instead of cycle-1->cycle, changing outcomes
     * relative to a from-reset run.  The base snapshot (cycle 0) is
     * the floor.
     */
    const uarch::OooCore &sourceFor(std::uint64_t cycle) const;

    /** Index of sourceFor(cycle) within cycles(). */
    std::size_t indexFor(std::uint64_t cycle) const;

    /** Snapshot cycles, ascending; cycles()[0] is always 0. */
    const std::vector<std::uint64_t> &cycles() const { return cycles_; }

    std::size_t count() const { return snapshots_.size(); }

    /** Current capture spacing in cycles. */
    std::uint64_t interval() const { return interval_; }

    /** Per-snapshot byte bound used for budget accounting. */
    std::uint64_t snapshotBoundBytes() const { return snapshotBytes_; }

    /** Live snapshots the policy allows (including the base). */
    std::size_t maxLiveSnapshots() const { return maxLive_; }

    /** True when the budget (not targetCount) set the cap. */
    bool budgetLimited() const { return budgetLimited_; }

    /**
     * Serialize the store (policy echo, schedule, every snapshot) for
     * the service's disk cache.  Snapshot cores are written with COW
     * page interning, so shared pages cost their bytes once.
     */
    void saveState(serial::Writer &writer) const;

    /**
     * Rebuild the store from a stream produced by saveState().  Each
     * snapshot is constructed fresh from (config, image) — the same
     * pair the saved cores were built from — and its dynamic state
     * overwritten.  On failure the reader's ok() turns false and the
     * store is left empty.
     */
    void loadState(serial::Reader &reader, const uarch::CoreConfig &config,
                   const isa::Image &image);

  private:
    void thin();

    CheckpointPolicy policy_;
    std::vector<std::shared_ptr<const uarch::OooCore>> snapshots_;
    std::vector<std::uint64_t> cycles_;
    std::uint64_t interval_ = 0;
    std::uint64_t next_ = 0;
    std::uint64_t snapshotBytes_ = 0;
    std::size_t maxLive_ = 1;
    bool budgetLimited_ = false;
};

} // namespace dfi::inject

#endif // DFI_INJECT_CHECKPOINT_HH

#include "inject/checkpoint.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/serial.hh"
#include "uarch/ooo_core.hh"

namespace dfi::inject
{

CheckpointStore::CheckpointStore(CheckpointPolicy policy)
    : policy_(policy)
{
}

void
CheckpointStore::captureBase(const uarch::OooCore &core)
{
    snapshots_.clear();
    cycles_.clear();
    snapshots_.push_back(
        std::make_shared<const uarch::OooCore>(core));
    cycles_.push_back(core.cycle());

    snapshotBytes_ = core.approxStateBytes();
    maxLive_ = 1;
    budgetLimited_ = false;
    if (policy_.enabled && policy_.targetCount > 1) {
        // Capture runs ahead of the target so thinning converges on
        // [targetCount, 2 x targetCount) evenly-spaced snapshots.
        maxLive_ = static_cast<std::size_t>(policy_.targetCount) * 2;
        if (policy_.budgetBytes > 0 && snapshotBytes_ > 0) {
            const std::uint64_t affordable =
                policy_.budgetBytes / snapshotBytes_;
            if (affordable < maxLive_) {
                // Drop policy: snapshots beyond the budget are never
                // taken (down to the base one alone) rather than
                // spilled — re-simulating an interval is cheaper than
                // restoring from disk.
                budgetLimited_ = true;
                maxLive_ = static_cast<std::size_t>(
                    std::max<std::uint64_t>(1, affordable));
            }
        }
    }
    interval_ = std::max<std::uint64_t>(1, policy_.initialInterval);
    next_ = core.cycle() + interval_;
}

void
CheckpointStore::observe(const uarch::OooCore &core)
{
    if (maxLive_ <= 1 || core.cycle() < next_)
        return;
    snapshots_.push_back(
        std::make_shared<const uarch::OooCore>(core));
    cycles_.push_back(core.cycle());
    next_ += interval_;
    if (snapshots_.size() > maxLive_)
        thin();
}

void
CheckpointStore::thin()
{
    // Drop every other non-base snapshot and double the spacing: the
    // cadence adapts to the (unknown in advance) golden run length
    // while holding at most maxLive_ snapshots at any moment.
    std::size_t keep = 0;
    for (std::size_t i = 0; i < snapshots_.size(); i += 2) {
        snapshots_[keep] = std::move(snapshots_[i]);
        cycles_[keep] = cycles_[i];
        ++keep;
    }
    snapshots_.resize(keep);
    cycles_.resize(keep);
    interval_ *= 2;
    next_ = cycles_.back() + interval_;
}

std::size_t
CheckpointStore::indexFor(std::uint64_t cycle) const
{
    // Latest snapshot strictly before `cycle`: the base snapshot is
    // cycle 0, so the element preceding the lower bound is the answer
    // (or the base when none is earlier).
    const auto it =
        std::lower_bound(cycles_.begin(), cycles_.end(), cycle);
    return it == cycles_.begin()
               ? 0
               : static_cast<std::size_t>(it - cycles_.begin()) - 1;
}

const uarch::OooCore &
CheckpointStore::sourceFor(std::uint64_t cycle) const
{
    if (snapshots_.empty())
        panic("CheckpointStore: sourceFor before captureBase");
    return *snapshots_[indexFor(cycle)];
}

namespace
{
/** Backstop against nonsense snapshot counts in a corrupt stream. */
constexpr std::uint64_t kMaxSnapshotsOnLoad = 4096;
} // namespace

void
CheckpointStore::saveState(serial::Writer &writer) const
{
    serial::value(writer, const_cast<bool &>(policy_.enabled));
    serial::value(writer, const_cast<std::uint32_t &>(policy_.targetCount));
    serial::value(writer, const_cast<std::uint64_t &>(policy_.budgetBytes));
    serial::value(writer,
                  const_cast<std::uint64_t &>(policy_.initialInterval));
    serial::value(writer, const_cast<std::vector<std::uint64_t> &>(cycles_));
    serial::value(writer, const_cast<std::uint64_t &>(interval_));
    serial::value(writer, const_cast<std::uint64_t &>(next_));
    serial::value(writer, const_cast<std::uint64_t &>(snapshotBytes_));
    std::uint64_t max_live = maxLive_;
    serial::value(writer, max_live);
    serial::value(writer, const_cast<bool &>(budgetLimited_));
    std::uint64_t count = snapshots_.size();
    serial::value(writer, count);
    // Writer::kSaving archives never mutate; the const_casts above and
    // below only satisfy the shared save/load signature.
    for (const auto &snapshot : snapshots_)
        const_cast<uarch::OooCore &>(*snapshot).serializeState(writer);
}

void
CheckpointStore::loadState(serial::Reader &reader,
                           const uarch::CoreConfig &config,
                           const isa::Image &image)
{
    snapshots_.clear();
    cycles_.clear();
    serial::value(reader, policy_.enabled);
    serial::value(reader, policy_.targetCount);
    serial::value(reader, policy_.budgetBytes);
    serial::value(reader, policy_.initialInterval);
    serial::value(reader, cycles_);
    serial::value(reader, interval_);
    serial::value(reader, next_);
    serial::value(reader, snapshotBytes_);
    std::uint64_t max_live = 0;
    serial::value(reader, max_live);
    maxLive_ = static_cast<std::size_t>(max_live);
    serial::value(reader, budgetLimited_);
    std::uint64_t count = 0;
    serial::value(reader, count);
    if (!reader.ok())
        return;
    if (count == 0 || count > kMaxSnapshotsOnLoad ||
        count != cycles_.size()) {
        reader.fail("checkpoint store: inconsistent snapshot count");
        cycles_.clear();
        return;
    }
    for (std::uint64_t i = 0; i < count; ++i) {
        if (!reader.ok()) {
            snapshots_.clear();
            cycles_.clear();
            return;
        }
        auto core = std::make_shared<uarch::OooCore>(config, image);
        core->serializeState(reader);
        snapshots_.push_back(std::move(core));
    }
    if (!reader.ok()) {
        snapshots_.clear();
        cycles_.clear();
    }
}

} // namespace dfi::inject
